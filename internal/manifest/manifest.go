// Package manifest implements the versioned segment catalog of a
// multi-segment table directory. The manifest is the single commit
// point of the store: a segment file only becomes visible — and only
// survives recovery — once a manifest generation referencing it has
// been atomically renamed into place. Everything else in the
// directory (half-written temporaries, segments whose commit never
// happened) is garbage that recovery removes on open.
//
// On disk a manifest is one small text file:
//
//	JTMAN001 <xxh64 of body, 16 hex digits>\n
//	{ ...JSON body: version, next segment id, segment list... }
//
// The checksum covers the JSON body, so a torn or bit-flipped
// manifest is detected before any field is trusted. Writes go to a
// temporary sibling, fsync, then rename — the same protocol segment
// files use — so a crash at any instant leaves either the previous
// generation or the new one, never a mix.
package manifest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/blockstore"
	"repro/internal/obs"
	"repro/internal/xxhash"
)

const (
	// FileName is the manifest's name inside a table directory.
	FileName = "MANIFEST"

	// headerMagic opens the file; the version suffix is bumped on any
	// incompatible layout change.
	headerMagic = "JTMAN001"

	// segPrefix/segSuffix frame segment file names: seg-%06d.seg.
	segPrefix = "seg-"
	segSuffix = ".seg"

	tmpSuffix = ".tmp"
)

// Rename is the commit step of every manifest write. Tests inject a
// failing hook here to simulate a crash between writing a segment
// file and publishing it — the exact window the recovery protocol
// exists for. Production code never touches it.
var Rename = os.Rename

// Segment is one committed segment file.
type Segment struct {
	// ID is the segment's allocation number; segment files are named
	// SegmentFileName(ID) and IDs are never reused within a table.
	ID uint64 `json:"id"`
	// File is the segment's file name relative to the table directory.
	File string `json:"file"`
	// Rows and Bytes mirror the segment's row count and file size so
	// planning-time summaries need no file access.
	Rows  int   `json:"rows"`
	Bytes int64 `json:"bytes"`
}

// Manifest is one committed generation of a table directory: which
// segment files are live, in scan order.
type Manifest struct {
	// Version is the commit sequence number, incremented on every
	// successful commit (append or compaction).
	Version uint64 `json:"version"`
	// NextID is the next unallocated segment ID.
	NextID uint64 `json:"next_id"`
	// Segments lists the live segments in scan order.
	Segments []Segment `json:"segments"`
}

// SegmentFileName returns the canonical file name for segment id.
func SegmentFileName(id uint64) string {
	return fmt.Sprintf("%s%06d%s", segPrefix, id, segSuffix)
}

// IsSegmentFileName reports whether name looks like a segment file —
// the shape recovery considers for orphan collection.
func IsSegmentFileName(name string) bool {
	return strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix)
}

// Encode serializes the manifest: checksummed header line plus JSON
// body.
func (m *Manifest) Encode() []byte {
	body, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		// Manifest has no unmarshalable fields; this cannot happen.
		panic(err)
	}
	head := fmt.Sprintf("%s %016x\n", headerMagic, xxhash.Sum64(body))
	return append([]byte(head), body...)
}

// Decode parses and validates an encoded manifest. Any structural
// problem — bad magic, checksum mismatch, malformed JSON, duplicate
// or ill-formed segment entries — returns an error; a nil error
// guarantees the manifest is internally consistent.
func Decode(b []byte) (*Manifest, error) {
	nl := -1
	for i, c := range b {
		if c == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, fmt.Errorf("manifest: missing header line")
	}
	head := string(b[:nl])
	body := b[nl+1:]
	var magic string
	var sum uint64
	if _, err := fmt.Sscanf(head, "%8s %16x", &magic, &sum); err != nil || magic != headerMagic {
		return nil, fmt.Errorf("manifest: bad header %q", head)
	}
	if got := xxhash.Sum64(body); got != sum {
		return nil, fmt.Errorf("manifest: checksum %016x, want %016x", got, sum)
	}
	var m Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	seen := make(map[string]bool, len(m.Segments))
	for _, s := range m.Segments {
		switch {
		case s.File != SegmentFileName(s.ID):
			return nil, fmt.Errorf("manifest: segment %d named %q, want %q", s.ID, s.File, SegmentFileName(s.ID))
		case s.ID >= m.NextID:
			return nil, fmt.Errorf("manifest: segment id %d not below next_id %d", s.ID, m.NextID)
		case s.Rows < 0 || s.Bytes < 0:
			return nil, fmt.Errorf("manifest: segment %d with %d rows, %d bytes", s.ID, s.Rows, s.Bytes)
		case seen[s.File]:
			return nil, fmt.Errorf("manifest: duplicate segment %q", s.File)
		}
		seen[s.File] = true
	}
	return &m, nil
}

// Commit atomically publishes the manifest as dir's current
// generation: write to a temporary sibling, fsync, rename over
// FileName. On return with a nil error the generation is durable; on
// any error the previous generation is untouched.
func Commit(dir string, m *Manifest) error {
	start := time.Now()
	path := filepath.Join(dir, FileName)
	tmp := path + tmpSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(m.Encode()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	obs.ManifestCommitSeconds.ObserveSince(start)
	return nil
}

// CommitStore atomically publishes the manifest as the store's
// current generation (the store's Put contract supplies the
// temp+fsync+rename discipline Commit hand-rolls for paths).
func CommitStore(s blockstore.Store, m *Manifest) error {
	start := time.Now()
	if err := s.Put(FileName, m.Encode()); err != nil {
		return err
	}
	obs.ManifestCommitSeconds.ObserveSince(start)
	return nil
}

// LoadStore reads the store's current manifest; a missing manifest
// returns (nil, nil) — a fresh table (see Load).
func LoadStore(s blockstore.Store) (*Manifest, error) {
	b, err := blockstore.ReadAll(s, FileName)
	if blockstore.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// RecoverStore is Recover over a store: load the committed
// generation, then delete every object the generation does not
// reference — temporaries from interrupted writes and segment objects
// whose manifest commit never happened. Objects that are neither
// temporaries nor segment-shaped are left alone.
func RecoverStore(s blockstore.Store) (*Manifest, int, error) {
	m, err := LoadStore(s)
	if err != nil {
		return nil, 0, err
	}
	if m == nil {
		m = &Manifest{Version: 0, NextID: 0}
	}
	live := make(map[string]bool, len(m.Segments))
	for _, seg := range m.Segments {
		live[seg.File] = true
	}
	names, err := s.List()
	if err != nil {
		return nil, 0, err
	}
	sort.Strings(names)
	removed := 0
	for _, name := range names {
		orphan := strings.HasSuffix(name, tmpSuffix) ||
			(IsSegmentFileName(name) && !live[name])
		if !orphan {
			continue
		}
		if err := s.Delete(name); err == nil {
			removed++
		}
	}
	return m, removed, nil
}

// syncDir makes the rename itself durable (best effort — some
// platforms cannot fsync directories).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Load reads dir's current manifest. A missing manifest returns
// (nil, nil): the directory holds no committed generation (a fresh
// table). A present-but-invalid manifest is an error — the store
// refuses to guess at its contents.
func Load(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, FileName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// Recover loads dir's committed generation and removes everything
// the generation does not reference: temporary files from interrupted
// writes and segment files whose manifest commit never happened. It
// returns the manifest (an empty first generation when the directory
// holds none) and the number of files garbage-collected. Files that
// are neither temporaries nor segment-shaped are left alone.
func Recover(dir string) (*Manifest, int, error) {
	m, err := Load(dir)
	if err != nil {
		return nil, 0, err
	}
	if m == nil {
		m = &Manifest{Version: 0, NextID: 0}
	}
	live := make(map[string]bool, len(m.Segments))
	for _, s := range m.Segments {
		live[s.File] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	removed := 0
	for _, name := range names {
		orphan := strings.HasSuffix(name, tmpSuffix) ||
			(IsSegmentFileName(name) && !live[name])
		if !orphan {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err == nil {
			removed++
		}
	}
	return m, removed, nil
}
