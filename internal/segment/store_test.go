package segment

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/bufpool"
	"repro/internal/stats"
	"repro/internal/tile"
)

// writeStoreSegment writes the standard two-tile test segment as an
// object on the given store.
func writeStoreSegment(t testing.TB, store blockstore.Store, name string) ([]*tile.Tile, *stats.TableStats) {
	t.Helper()
	t1src := make([]string, 0, 64)
	t2src := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		t1src = append(t1src, fmt.Sprintf(
			`{"id":%d,"price":%g,"name":"item-%d","active":%t}`, i, float64(i)*1.5+0.25, i, i%2 == 0))
		t2src = append(t2src, fmt.Sprintf(
			`{"user":{"id":%d},"score":%d,"extra_%d":1}`, i, i*10, i))
	}
	tiles := []*tile.Tile{buildTile(t, t1src...), buildTile(t, t2src...)}
	st := stats.New(0, 0)
	for _, tl := range tiles {
		st.AddTile(tl)
	}
	if _, err := WriteStore(store, name, tiles, st); err != nil {
		t.Fatalf("WriteStore: %v", err)
	}
	return tiles, st
}

// TestOpenStoreFooterFirst verifies the speculative-tail open protocol:
// a small segment opens in a handful of requests (size probe + tail
// window covering header, footer, and tail), never one per block.
func TestOpenStoreFooterFirst(t *testing.T) {
	fake := blockstore.NewFakeS3(nil, blockstore.FakeS3Config{})
	tiles, _ := writeStoreSegment(t, fake, "seg")
	before := fake.Requests()
	r, err := OpenStore(fake, "seg", bufpool.New(0))
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer r.Close()
	if got := fake.Requests() - before; got > 3 {
		t.Errorf("open took %d store requests, want <= 3", got)
	}
	if r.NumTiles() != len(tiles) || r.NumRows() != 128 {
		t.Fatalf("opened %d tiles / %d rows, want %d / 128", r.NumTiles(), r.NumRows(), len(tiles))
	}
	// Data blocks still load on demand and decode correctly.
	docs, info, err := r.Docs(0)
	if err != nil {
		t.Fatalf("Docs: %v", err)
	}
	if len(docs) != 64 || info.Hit {
		t.Fatalf("Docs = %d rows, hit=%v; want 64 cold rows", len(docs), info.Hit)
	}
}

// TestOpenStoreErrorContext is the regression test for error context:
// every failure surfaced while opening or demand-reading a segment
// object names the object and the exact byte range, so remote-store
// incidents are debuggable from the error string alone.
func TestOpenStoreErrorContext(t *testing.T) {
	fake := blockstore.NewFakeS3(nil, blockstore.FakeS3Config{})
	writeStoreSegment(t, fake, "ctx.seg")
	size, err := fake.Size("ctx.seg")
	if err != nil {
		t.Fatal(err)
	}

	// Open against a store whose reads all fail (more failures than the
	// retry budget): the error names the object and the tail range.
	fake.FailNextReads(1000)
	_, err = OpenStore(fake, "ctx.seg", nil)
	fake.FailNextReads(-1000)
	if err == nil {
		t.Fatal("OpenStore succeeded against an always-failing store")
	}
	if !blockstore.IsTransient(err) {
		t.Errorf("open error %v, want transient", err)
	}
	msg := err.Error()
	wantRange := fmt.Sprintf("[%d,+", max64(0, size-int64(openTailWindow)))
	if !strings.Contains(msg, "ctx.seg") || !strings.Contains(msg, wantRange) {
		t.Errorf("open error %q lacks object name or byte range %q", msg, wantRange)
	}

	// Demand reads after a successful open: same contract.
	r, err := OpenStore(fake, "ctx.seg", bufpool.New(0))
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer r.Close()
	ref := r.Tile(0).Docs
	fake.FailNextReads(1000)
	_, _, err = r.readBlock(ref)
	fake.FailNextReads(-1000)
	if err == nil {
		t.Fatal("readBlock succeeded against an always-failing store")
	}
	msg = err.Error()
	wantRange = fmt.Sprintf("[%d,+%d)", ref.Off, ref.StoredLen)
	if !strings.Contains(msg, "ctx.seg") || !strings.Contains(msg, wantRange) {
		t.Errorf("demand-read error %q lacks object name or byte range %q", msg, wantRange)
	}

	// Transient failures below the retry budget are invisible to the
	// caller — the block arrives, with the retries reported.
	fake.FailNextReads(2)
	b, retries, err := r.readBlock(ref)
	if err != nil || len(b) == 0 {
		t.Fatalf("readBlock after 2 transient failures: %v", err)
	}
	if retries != 2 {
		t.Errorf("retries = %d, want 2", retries)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
