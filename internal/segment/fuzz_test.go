package segment

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bufpool"
	"repro/internal/keypath"
	"repro/internal/stats"
	"repro/internal/tile"
)

// FuzzOpenSegment: arbitrary mutations of a valid segment — corrupted
// headers, footers, block lengths, checksums, truncations — must
// yield errors, never panics, unbounded allocations, or out-of-range
// reads. Mutants that still open cleanly must also survive having
// every block read.
func FuzzOpenSegment(f *testing.F) {
	// Seed with a real two-tile segment plus targeted corruptions.
	seedPath := filepath.Join(f.TempDir(), "seed.seg")
	st := stats.New(0, 0)
	var tiles []*tile.Tile
	for _, srcs := range [][]string{
		{`{"a":1,"b":"x"}`, `{"a":2,"b":"y"}`, `{"a":3}`},
		{`{"c":1.5,"d":true}`, `{"c":2.5}`},
	} {
		tl := buildTile(f, srcs...)
		tiles = append(tiles, tl)
		st.AddTile(tl)
	}
	if err := WriteFile(seedPath, tiles, st); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}

	// A dictionary-bearing segment (low-cardinality text column) and a
	// legacy v1 segment: both layouts must survive mutation.
	dictTile := buildDictTile(f, 96)
	dictStats := stats.New(0, 0)
	dictStats.AddTile(dictTile)
	dictPath := filepath.Join(f.TempDir(), "dict.seg")
	if err := WriteFile(dictPath, []*tile.Tile{dictTile}, dictStats); err != nil {
		f.Fatal(err)
	}
	validDict, err := os.ReadFile(dictPath)
	if err != nil {
		f.Fatal(err)
	}
	v1Path := filepath.Join(f.TempDir(), "v1.seg")
	v1f, err := os.Create(v1Path)
	if err != nil {
		f.Fatal(err)
	}
	if err := WriteV1(v1f, tiles, st); err != nil {
		f.Fatal(err)
	}
	if err := v1f.Close(); err != nil {
		f.Fatal(err)
	}
	validV1, err := os.ReadFile(v1Path)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(valid)
	f.Add(validDict)
	f.Add(validV1)
	// v2 footer bytes under a v1 magic (and vice versa) must be
	// rejected or degrade cleanly, never panic.
	crossMagic := append([]byte(MagicV1), validDict[len(Magic):]...)
	f.Add(crossMagic)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add([]byte(MagicV1))
	f.Add([]byte(MagicFooter))
	// Header corruption.
	f.Add(append([]byte("JTSEG999"), valid[8:]...))
	// Tail magic corruption.
	tailless := append([]byte(nil), valid...)
	copy(tailless[len(tailless)-8:], "XXXXXXXX")
	f.Add(tailless)
	// Footer offset pointing past EOF.
	badOff := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(badOff[len(badOff)-TailSize:], 1<<40)
	f.Add(badOff)
	// Footer length fields inflated.
	badLen := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badLen[len(badLen)-TailSize+8:], 0xFFFFFFFF)
	binary.LittleEndian.PutUint32(badLen[len(badLen)-TailSize+12:], 0xFFFFFFFF)
	f.Add(badLen)
	// Footer checksum flipped.
	badSum := append([]byte(nil), valid...)
	badSum[len(badSum)-TailSize+16] ^= 0xFF
	f.Add(badSum)
	// A flipped byte inside the first data block.
	badBlock := append([]byte(nil), valid...)
	badBlock[len(Magic)+1] ^= 0x40
	f.Add(badBlock)
	// Truncations at structural boundaries.
	f.Add(valid[:len(Magic)])
	f.Add(valid[:len(valid)-TailSize])
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.seg")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		pool := bufpool.New(1 << 20)
		r, err := Open(p, pool)
		if err != nil {
			return // rejected cleanly: the property we want
		}
		defer r.Close()
		// The footer decoded; every declared block must now be readable
		// or fail with an error (checksum, decode) — never a panic.
		for ti := 0; ti < r.NumTiles(); ti++ {
			tm := r.Tile(ti)
			_ = tm.MayContainPath("a")
			_ = tm.MayContainPath("nope")
			if docs, _, err := r.Docs(ti); err == nil {
				for _, d := range docs {
					_ = len(d)
				}
			}
			for ci := range tm.Columns {
				if col, _, err := r.Column(ti, ci); err == nil {
					for row := 0; row < col.Len(); row++ {
						if col.IsNull(row) {
							continue
						}
						if col.Type() == keypath.TypeString {
							_ = col.StringBytes(row)
						}
					}
				}
			}
		}
		_ = r.Stats().RowCount()
		_ = r.NumRows()
	})
}
