package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bufpool"
	"repro/internal/stats"
	"repro/internal/tile"
)

// writeSegmentWith writes one segment holding the given tiles.
func writeSegmentWith(t *testing.T, dir, name string, tiles ...*tile.Tile) string {
	t.Helper()
	st := stats.New(0, 0)
	for _, tl := range tiles {
		st.AddTile(tl)
	}
	path := filepath.Join(dir, name)
	if err := WriteFile(path, tiles, st); err != nil {
		t.Fatalf("WriteFile(%s): %v", name, err)
	}
	return path
}

func TestMergeFiles(t *testing.T) {
	dir := t.TempDir()
	var srcTiles [][]*tile.Tile
	var paths []string
	for s := 0; s < 3; s++ {
		var docs []string
		for i := 0; i < 32; i++ {
			docs = append(docs, fmt.Sprintf(
				`{"seg":%d,"id":%d,"name":"n-%d-%d","price":%g}`, s, s*32+i, s, i, float64(i)*0.5))
		}
		tl := buildTile(t, docs...)
		srcTiles = append(srcTiles, []*tile.Tile{tl})
		paths = append(paths, writeSegmentWith(t, dir, fmt.Sprintf("src%d.seg", s), tl))
	}

	pool := bufpool.New(bufpool.DefaultCapacity)
	var readers []*Reader
	for _, p := range paths {
		r, err := Open(p, pool)
		if err != nil {
			t.Fatalf("Open(%s): %v", p, err)
		}
		defer r.Close()
		readers = append(readers, r)
	}

	merged := filepath.Join(dir, "merged.seg")
	n, err := MergeFiles(merged, readers)
	if err != nil {
		t.Fatalf("MergeFiles: %v", err)
	}
	fi, err := os.Stat(merged)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if n != fi.Size() {
		t.Errorf("MergeFiles returned %d bytes, file is %d", n, fi.Size())
	}

	mr, err := Open(merged, pool)
	if err != nil {
		t.Fatalf("Open(merged): %v", err)
	}
	defer mr.Close()

	if mr.NumTiles() != 3 {
		t.Fatalf("NumTiles = %d, want 3", mr.NumTiles())
	}
	if mr.NumRows() != 96 {
		t.Fatalf("NumRows = %d, want 96", mr.NumRows())
	}
	if got := mr.Stats().RowCount(); got != 96 {
		t.Errorf("stats rows = %d, want 96", got)
	}
	if got := mr.Stats().PathCount("id"); got != 96 {
		t.Errorf("stats PathCount(id) = %d, want 96", got)
	}

	// Every merged tile must serve the same columns and documents as
	// its source tile.
	ti := 0
	for s, tiles := range srcTiles {
		for _, src := range tiles {
			tm := mr.Tile(ti)
			if tm.Rows != src.NumRows() {
				t.Fatalf("tile %d rows = %d, want %d", ti, tm.Rows, src.NumRows())
			}
			srcCols := src.Columns()
			if len(tm.Columns) != len(srcCols) {
				t.Fatalf("tile %d: %d columns, want %d", ti, len(tm.Columns), len(srcCols))
			}
			for ci := range tm.Columns {
				col, _, err := mr.Column(ti, ci)
				if err != nil {
					t.Fatalf("tile %d column %d: %v", ti, ci, err)
				}
				want := srcCols[ci].Col
				if col.Len() != want.Len() || col.Type() != want.Type() {
					t.Fatalf("tile %d column %q shape mismatch", ti, tm.Columns[ci].Path)
				}
				for i := 0; i < col.Len(); i++ {
					if col.IsNull(i) != want.IsNull(i) {
						t.Fatalf("tile %d column %q row %d null mismatch", ti, tm.Columns[ci].Path, i)
					}
				}
			}
			docs, _, err := mr.Docs(ti)
			if err != nil {
				t.Fatalf("tile %d docs: %v", ti, err)
			}
			if len(docs) != src.NumRows() {
				t.Fatalf("tile %d: %d docs, want %d", ti, len(docs), src.NumRows())
			}
			if !tm.MayContainPath("seg") {
				t.Fatalf("tile %d (source segment %d) lost its seen filter", ti, s)
			}
			ti++
		}
	}
}

func TestMergeAcceptsV1Sources(t *testing.T) {
	dir := t.TempDir()
	tl := buildTile(t,
		`{"a":1,"b":"x"}`, `{"a":2,"b":"y"}`, `{"a":3}`)
	st := stats.New(0, 0)
	st.AddTile(tl)
	v1path := filepath.Join(dir, "v1.seg")
	f, err := os.Create(v1path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteV1(f, []*tile.Tile{tl}, st); err != nil {
		t.Fatalf("WriteV1: %v", err)
	}
	f.Close()

	pool := bufpool.New(bufpool.DefaultCapacity)
	r1, err := Open(v1path, pool)
	if err != nil {
		t.Fatalf("Open v1: %v", err)
	}
	defer r1.Close()

	merged := filepath.Join(dir, "merged.seg")
	if _, err := MergeFiles(merged, []*Reader{r1, r1}); err != nil {
		t.Fatalf("MergeFiles: %v", err)
	}
	mr, err := Open(merged, pool)
	if err != nil {
		t.Fatalf("Open merged: %v", err)
	}
	defer mr.Close()
	if mr.Version() != 2 {
		t.Errorf("merged version = %d, want 2", mr.Version())
	}
	if mr.NumRows() != 6 {
		t.Errorf("NumRows = %d, want 6", mr.NumRows())
	}
	if _, _, err := mr.Column(0, 0); err != nil {
		t.Errorf("Column: %v", err)
	}
}
