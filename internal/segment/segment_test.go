package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bufpool"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
	"repro/internal/stats"
	"repro/internal/tile"
)

func buildTile(t testing.TB, srcs ...string) *tile.Tile {
	t.Helper()
	docs := make([]jsonvalue.Value, len(srcs))
	for i, s := range srcs {
		v, err := jsontext.ParseString(s)
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = v
	}
	cfg := tile.DefaultConfig()
	cfg.DetectDates = false
	return tile.NewBuilder(cfg, nil).Build(docs)
}

// writeTestSegment builds two tiles with disjoint schemas (so tile
// skipping has something to skip) plus relation statistics, and
// writes them to a temp segment.
func writeTestSegment(t testing.TB) (path string, tiles []*tile.Tile, st *stats.TableStats) {
	t.Helper()
	t1src := make([]string, 0, 64)
	t2src := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		t1src = append(t1src, fmt.Sprintf(
			`{"id":%d,"price":%g,"name":"item-%d","active":%t}`, i, float64(i)*1.5+0.25, i, i%2 == 0))
		t2src = append(t2src, fmt.Sprintf(
			`{"user":{"id":%d},"score":%d,"extra_%d":1}`, i, i*10, i))
	}
	tiles = []*tile.Tile{buildTile(t, t1src...), buildTile(t, t2src...)}
	st = stats.New(0, 0)
	for _, tl := range tiles {
		st.AddTile(tl)
	}
	path = filepath.Join(t.TempDir(), "test.seg")
	if err := WriteFile(path, tiles, st); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path, tiles, st
}

func TestRoundTrip(t *testing.T) {
	path, tiles, st := writeTestSegment(t)
	pool := bufpool.New(bufpool.DefaultCapacity)
	r, err := Open(path, pool)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()

	if r.NumTiles() != len(tiles) {
		t.Fatalf("NumTiles = %d, want %d", r.NumTiles(), len(tiles))
	}
	if r.NumRows() != 128 {
		t.Errorf("NumRows = %d, want 128", r.NumRows())
	}
	if r.Stats().RowCount() != st.RowCount() {
		t.Errorf("stats rows = %d, want %d", r.Stats().RowCount(), st.RowCount())
	}

	for ti, src := range tiles {
		tm := r.Tile(ti)
		if tm.Rows != src.NumRows() {
			t.Errorf("tile %d rows = %d, want %d", ti, tm.Rows, src.NumRows())
		}
		cols := src.Columns()
		if len(tm.Columns) != len(cols) {
			t.Fatalf("tile %d: %d columns, want %d", ti, len(tm.Columns), len(cols))
		}
		for ci := range cols {
			want := &cols[ci]
			cm := &tm.Columns[ci]
			if cm.Path != want.Path || cm.StorageType != want.StorageType ||
				cm.MinedType != want.MinedType || cm.HasTypeOutliers != want.HasTypeOutliers {
				t.Errorf("tile %d col %d meta = %+v, want %q", ti, ci, cm, want.Path)
			}
			got, _, err := r.Column(ti, ci)
			if err != nil {
				t.Fatalf("Column(%d,%d): %v", ti, ci, err)
			}
			if got.Len() != want.Col.Len() || got.Type() != want.Col.Type() {
				t.Fatalf("tile %d col %q shape mismatch", ti, want.Path)
			}
			for row := 0; row < got.Len(); row++ {
				if got.IsNull(row) != want.Col.IsNull(row) {
					t.Fatalf("tile %d col %q row %d null mismatch", ti, want.Path, row)
				}
				if got.IsNull(row) {
					continue
				}
				switch got.Type() {
				case keypath.TypeBigInt, keypath.TypeTimestamp:
					if got.Int(row) != want.Col.Int(row) {
						t.Fatalf("tile %d col %q row %d int mismatch", ti, want.Path, row)
					}
				case keypath.TypeDouble:
					if got.Float(row) != want.Col.Float(row) {
						t.Fatalf("tile %d col %q row %d float mismatch", ti, want.Path, row)
					}
				case keypath.TypeString:
					if got.String(row) != want.Col.String(row) {
						t.Fatalf("tile %d col %q row %d string mismatch", ti, want.Path, row)
					}
				case keypath.TypeBool:
					if got.Bool(row) != want.Col.Bool(row) {
						t.Fatalf("tile %d col %q row %d bool mismatch", ti, want.Path, row)
					}
				}
			}
		}
		docs, _, err := r.Docs(ti)
		if err != nil {
			t.Fatalf("Docs(%d): %v", ti, err)
		}
		if len(docs) != src.NumRows() {
			t.Fatalf("tile %d: %d docs, want %d", ti, len(docs), src.NumRows())
		}
		for row := range docs {
			if string(docs[row]) != string(src.RawBytes(row)) {
				t.Fatalf("tile %d doc %d differs from source", ti, row)
			}
		}
	}
}

// buildDictTile builds one tile whose "level" column has few distinct
// values, so default extraction dictionary-encodes it.
func buildDictTile(t testing.TB, rows int) *tile.Tile {
	t.Helper()
	levels := []string{"debug", "error", "info", "warn"}
	srcs := make([]string, 0, rows)
	for i := 0; i < rows; i++ {
		if i%7 == 3 {
			srcs = append(srcs, fmt.Sprintf(`{"id":%d}`, i)) // level NULL
			continue
		}
		srcs = append(srcs, fmt.Sprintf(`{"id":%d,"level":"%s"}`, i, levels[i%len(levels)]))
	}
	return buildTile(t, srcs...)
}

func TestDictColumnRoundTrip(t *testing.T) {
	tl := buildDictTile(t, 200)
	st := stats.New(0, 0)
	st.AddTile(tl)
	path := filepath.Join(t.TempDir(), "dict.seg")
	if err := WriteFile(path, []*tile.Tile{tl}, st); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, bufpool.New(bufpool.DefaultCapacity))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() != 2 {
		t.Fatalf("Version = %d, want 2", r.Version())
	}

	tm := r.Tile(0)
	dictIdx := -1
	for ci := range tm.Columns {
		if tm.Columns[ci].Path == "level" {
			dictIdx = ci
		}
	}
	if dictIdx < 0 {
		t.Fatal("column level not extracted")
	}
	cm := &tm.Columns[dictIdx]
	if !cm.HasDict {
		t.Fatal("level column not dictionary-encoded in footer")
	}
	if !cm.Zone.HasStrBounds || cm.Zone.MinStr != "debug" || cm.Zone.MaxStr != "warn" {
		t.Errorf("string zone = %+v, want [debug,warn]", cm.Zone)
	}

	// A dictionary column costs two block reads (codes + dict).
	got, infos, err := r.Column(0, dictIdx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Errorf("dict column read reported %d blocks, want 2", len(infos))
	}
	if !got.IsDict() {
		t.Error("deserialized column lost its dictionary")
	}
	want := tl.Column(dictIdx).Col
	for row := 0; row < want.Len(); row++ {
		if got.IsNull(row) != want.IsNull(row) {
			t.Fatalf("row %d null mismatch", row)
		}
		if !got.IsNull(row) && got.String(row) != want.String(row) {
			t.Fatalf("row %d = %q, want %q", row, got.String(row), want.String(row))
		}
	}
}

// TestOpenV1Segment: the reader must still open and fully scan the
// legacy JTSEG001 layout (single arena block per column, no string
// zone bounds).
func TestOpenV1Segment(t *testing.T) {
	cfg := tile.DefaultConfig()
	cfg.DetectDates = false
	cfg.DictThreshold = 0 // v1 files predate dictionary encoding
	srcs := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		srcs = append(srcs, fmt.Sprintf(`{"id":%d,"level":"%s"}`, i, []string{"a", "b"}[i%2]))
	}
	docs := make([]jsonvalue.Value, len(srcs))
	for i, s := range srcs {
		v, err := jsontext.ParseString(s)
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = v
	}
	tl := tile.NewBuilder(cfg, nil).Build(docs)
	st := stats.New(0, 0)
	st.AddTile(tl)

	path := filepath.Join(t.TempDir(), "v1.seg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteV1(f, []*tile.Tile{tl}, st); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	head := make([]byte, len(MagicV1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(head, raw)
	if string(head) != MagicV1 {
		t.Fatalf("v1 file starts with %q, want %q", head, MagicV1)
	}

	r, err := Open(path, bufpool.New(0))
	if err != nil {
		t.Fatalf("Open v1: %v", err)
	}
	defer r.Close()
	if r.Version() != 1 {
		t.Fatalf("Version = %d, want 1", r.Version())
	}
	tm := r.Tile(0)
	for ci := range tm.Columns {
		cm := &tm.Columns[ci]
		if cm.HasDict || cm.Zone.HasStrBounds {
			t.Errorf("v1 column %q decoded with v2-only fields: %+v", cm.Path, cm)
		}
		got, infos, err := r.Column(0, ci)
		if err != nil {
			t.Fatalf("Column %q: %v", cm.Path, err)
		}
		if len(infos) != 1 {
			t.Errorf("v1 column read reported %d blocks, want 1", len(infos))
		}
		want := tl.Column(ci).Col
		for row := 0; row < want.Len(); row++ {
			if got.IsNull(row) != want.IsNull(row) {
				t.Fatalf("col %q row %d null mismatch", cm.Path, row)
			}
		}
		if cm.Path == "level" {
			for row := 0; row < want.Len(); row++ {
				if got.String(row) != want.String(row) {
					t.Fatalf("col level row %d = %q, want %q", row, got.String(row), want.String(row))
				}
			}
		}
	}
}

func TestMayContainPathMatchesSource(t *testing.T) {
	path, tiles, _ := writeTestSegment(t)
	r, err := Open(path, bufpool.New(0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// The footer's skip decision must never be falsely negative
	// relative to the in-memory tile; probe extracted paths, seen
	// paths, prefixes, and absent paths.
	probes := []string{"id", "price", "name", "active", "score",
		keypath.NewPath("user", "id").Encode(),
		keypath.NewPath("user").Encode(), "extra_3", "definitely_absent"}
	for ti, src := range tiles {
		tm := r.Tile(ti)
		for _, p := range probes {
			if src.MayContainPath(p) && !tm.MayContainPath(p) {
				t.Errorf("tile %d path %q: source says may-contain, footer says skip", ti, p)
			}
		}
	}
}

func TestZoneMaps(t *testing.T) {
	path, _, _ := writeTestSegment(t)
	r, err := Open(path, bufpool.New(0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tm := r.Tile(0)
	byPath := map[string]ColumnMeta{}
	for _, c := range tm.Columns {
		byPath[c.Path] = c
	}
	id, ok := byPath["id"]
	if !ok {
		t.Fatal("column id not extracted")
	}
	if !id.Zone.HasBounds || id.Zone.Min != 0 || id.Zone.Max != 63 {
		t.Errorf("id zone = %+v, want [0,63]", id.Zone)
	}
	price, ok := byPath["price"]
	if !ok {
		t.Fatal("column price not extracted")
	}
	if !price.Zone.HasBounds || price.Zone.Min != 0.25 || price.Zone.Max != 63*1.5+0.25 {
		t.Errorf("price zone = %+v, want [0.25,94.75]", price.Zone)
	}
	name := byPath["name"]
	if name.Zone.HasBounds {
		t.Errorf("text column has numeric bounds: %+v", name.Zone)
	}
}

func TestBufpoolIntegration(t *testing.T) {
	path, _, _ := writeTestSegment(t)
	pool := bufpool.New(bufpool.DefaultCapacity)
	r, err := Open(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	_, i1, err := r.Column(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range i1 {
		if info.Hit || info.StoredBytes == 0 {
			t.Errorf("cold read: info = %+v, want miss with bytes", info)
		}
	}
	_, i2, err := r.Column(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range i2 {
		if !info.Hit || info.StoredBytes != 0 {
			t.Errorf("warm read: info = %+v, want hit with 0 bytes", info)
		}
	}
	// Closing drops this file's blocks from the shared pool.
	r.Close()
	if st := pool.Stats(); st.Resident != 0 {
		t.Errorf("resident after Close = %d, want 0", st.Resident)
	}
}

func TestOpenNilPool(t *testing.T) {
	path, _, _ := writeTestSegment(t)
	r, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, infos, err := r.Column(0, 0); err != nil || infos[0].Hit {
		t.Errorf("pool-less read: infos=%+v err=%v", infos, err)
	}
}

func TestEmptySegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.seg")
	if err := WriteFile(path, nil, stats.New(0, 0)); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, bufpool.New(0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumTiles() != 0 || r.NumRows() != 0 {
		t.Errorf("empty segment: %d tiles %d rows", r.NumTiles(), r.NumRows())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	_, tiles, st := writeTestSegment(t)
	if err := WriteFile(path, tiles, st); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "seg" {
			t.Errorf("leftover file %q after WriteFile", e.Name())
		}
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	check := func(name string, b []byte) {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(p, nil); err == nil {
			t.Errorf("%s: Open succeeded, want error", name)
		}
	}
	check("empty", nil)
	check("short", []byte("JT"))
	check("zeros", make([]byte, 64))
	check("badmagic", append([]byte("XXSEG999"), make([]byte, 40)...))

	// Valid header, garbage tail.
	b := append([]byte(Magic), make([]byte, 100)...)
	check("badtail", b)

	// Truncate a valid segment at every eighth byte: each must error,
	// never panic.
	good, _, _ := writeTestSegment(t)
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 8 {
		check(fmt.Sprintf("trunc%d", cut), data[:cut])
	}
}

func TestCorruptBlockDetected(t *testing.T) {
	path, _, _ := writeTestSegment(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the first data block (just after the header).
	data[len(Magic)+3] ^= 0xFF
	bad := filepath.Join(t.TempDir(), "corrupt.seg")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(bad, bufpool.New(0))
	if err != nil {
		// The flipped byte may fall in the footer region of a small
		// segment; detection at open is equally acceptable.
		return
	}
	defer r.Close()
	// Some block read must fail its checksum.
	sawErr := false
	for ti := 0; ti < r.NumTiles(); ti++ {
		if _, _, err := r.Docs(ti); err != nil {
			sawErr = true
		}
		for ci := range r.Tile(ti).Columns {
			if _, _, err := r.Column(ti, ci); err != nil {
				sawErr = true
			}
		}
	}
	if !sawErr {
		t.Error("no read detected the flipped byte")
	}
}
