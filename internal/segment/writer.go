package segment

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/blockstore"
	"repro/internal/bloom"
	"repro/internal/column"
	"repro/internal/keypath"
	"repro/internal/lz4"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/tile"
	"repro/internal/xxhash"
)

// WriteFile serializes the tiles and relation statistics into a new
// segment file at path. The file is written to a temporary sibling
// and renamed into place so a crashed write never leaves a
// half-segment under the target name.
func WriteFile(path string, tiles []*tile.Tile, st *stats.TableStats) error {
	start := time.Now()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Write(f, tiles, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	var size int64
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	obs.SegmentWriteSeconds.ObserveSince(start)
	obs.SegmentWriteBytes.Observe(float64(size))
	return nil
}

// WriteStore serializes the tiles into the store under name: the
// stream is built in memory and atomically published with one Put
// (the store's equivalent of the temp+rename protocol). Returns the
// object's size in bytes.
func WriteStore(store blockstore.Store, name string, tiles []*tile.Tile, st *stats.TableStats) (int64, error) {
	start := time.Now()
	var buf bytes.Buffer
	if err := Write(&buf, tiles, st); err != nil {
		return 0, err
	}
	if err := store.Put(name, buf.Bytes()); err != nil {
		return 0, err
	}
	obs.SegmentWriteSeconds.ObserveSince(start)
	obs.SegmentWriteBytes.Observe(float64(buf.Len()))
	return int64(buf.Len()), nil
}

// Write serializes the tiles and statistics as one segment stream:
// header, data blocks, footer, tail. Blocks are LZ4-compressed unless
// compression does not help, in which case they are stored raw.
// Dictionary-encoded text columns become two blocks — codes and the
// sorted dictionary — so readers fetch, checksum, and pool-cache each
// independently.
func Write(w io.Writer, tiles []*tile.Tile, st *stats.TableStats) error {
	return writeVersioned(w, tiles, st, 2)
}

// WriteV1 serializes the tiles in the legacy JTSEG001 layout — the
// fixture writer for backward-compatibility tests (real v1 files
// predate dictionary encoding, so tiles handed here should be built
// with it disabled).
func WriteV1(w io.Writer, tiles []*tile.Tile, st *stats.TableStats) error {
	return writeVersioned(w, tiles, st, 1)
}

func writeVersioned(w io.Writer, tiles []*tile.Tile, st *stats.TableStats, version int) error {
	bw := &blockWriter{w: bufio.NewWriterSize(w, 1<<20)}
	magic := Magic
	if version == 1 {
		magic = MagicV1
	}
	if err := bw.raw([]byte(magic)); err != nil {
		return err
	}

	metas := make([]TileMeta, len(tiles))
	for i, t := range tiles {
		tm := &metas[i]
		tm.Rows = t.NumRows()
		var err error
		if tm.Docs, err = bw.block(encodeDocs(t)); err != nil {
			return fmt.Errorf("tile %d docs: %w", i, err)
		}
		cols := t.Columns()
		tm.Columns = make([]ColumnMeta, len(cols))
		for j := range cols {
			ci := &cols[j]
			cm := &tm.Columns[j]
			cm.Path = ci.Path
			cm.MinedType = ci.MinedType
			cm.StorageType = ci.StorageType
			cm.HasTypeOutliers = ci.HasTypeOutliers
			cm.Zone = zoneOf(ci.Col)
			if version >= 2 && ci.Col.IsDict() {
				cm.HasDict = true
				if dl := ci.Col.DictLen(); dl > 0 {
					// The dictionary is sorted: min/max are its ends.
					cm.Zone.HasStrBounds = true
					cm.Zone.MinStr = ci.Col.DictEntryString(0)
					cm.Zone.MaxStr = ci.Col.DictEntryString(dl - 1)
				}
				if cm.Block, err = bw.block(ci.Col.SerializeCodes()); err != nil {
					return fmt.Errorf("tile %d column %q codes: %w", i, ci.Path, err)
				}
				if cm.Dict, err = bw.block(ci.Col.SerializeDict()); err != nil {
					return fmt.Errorf("tile %d column %q dict: %w", i, ci.Path, err)
				}
				continue
			}
			if cm.Block, err = bw.block(ci.Col.Serialize()); err != nil {
				return fmt.Errorf("tile %d column %q: %w", i, ci.Path, err)
			}
		}
		if tm.seen = t.SeenFilter(); tm.seen == nil {
			tm.seen = bloom.New(1, 0.01)
		}
	}

	footerRaw := encodeFooter(metas, st, version)
	footerRef, err := bw.block(footerRaw)
	if err != nil {
		return fmt.Errorf("footer: %w", err)
	}

	var tail [TailSize]byte
	binary.LittleEndian.PutUint64(tail[0:], footerRef.Off)
	binary.LittleEndian.PutUint32(tail[8:], footerRef.StoredLen)
	binary.LittleEndian.PutUint32(tail[12:], footerRef.RawLen)
	binary.LittleEndian.PutUint64(tail[16:], footerRef.Sum)
	copy(tail[24:], MagicFooter)
	if err := bw.raw(tail[:]); err != nil {
		return err
	}
	return bw.w.Flush()
}

// blockWriter appends blocks sequentially, tracking the offset.
type blockWriter struct {
	w   *bufio.Writer
	off uint64
}

func (bw *blockWriter) raw(b []byte) error {
	n, err := bw.w.Write(b)
	bw.off += uint64(n)
	return err
}

// block compresses, checksums, and appends one payload, returning its
// ref. Incompressible payloads are stored raw: spending a failed
// compression attempt at write time is cheap, skipping a futile
// decompression on every future read is not.
func (bw *blockWriter) block(payload []byte) (BlockRef, error) {
	ref := BlockRef{Off: bw.off, RawLen: uint32(len(payload))}
	stored := payload
	ref.Codec = codecRaw
	if c := lz4.Compress(nil, payload); len(c) < len(payload) {
		stored = c
		ref.Codec = codecLZ4
	}
	ref.StoredLen = uint32(len(stored))
	ref.Sum = xxhash.Sum64(stored)
	if err := bw.raw(stored); err != nil {
		return BlockRef{}, err
	}
	return ref, nil
}

// encodeDocs flattens a tile's binary-JSON fallback documents into
// one block payload: u32 count, then u32 length + bytes per document.
func encodeDocs(t *tile.Tile) []byte {
	n := t.NumRows()
	size := 4
	for i := 0; i < n; i++ {
		size += 4 + len(t.RawBytes(i))
	}
	out := make([]byte, 0, size)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(n))
	out = append(out, tmp[:]...)
	for i := 0; i < n; i++ {
		d := t.RawBytes(i)
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(d)))
		out = append(out, tmp[:]...)
		out = append(out, d...)
	}
	return out
}

// decodeDocs splits a docs-block payload back into per-document byte
// slices (aliasing the payload, which lives in the buffer pool).
func decodeDocs(b []byte, wantRows int) ([][]byte, error) {
	if len(b) < 4 {
		return nil, corruptf("docs block of %d bytes", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if n != wantRows {
		return nil, corruptf("docs block holds %d documents, tile has %d rows", n, wantRows)
	}
	docs := make([][]byte, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, corruptf("docs block truncated at document %d", i)
		}
		l := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if l < 0 || len(b) < l {
			return nil, corruptf("document %d declares %d bytes, %d remain", i, l, len(b))
		}
		docs[i] = b[:l:l]
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, corruptf("%d trailing docs-block bytes", len(b))
	}
	return docs, nil
}

// zoneOf computes the min/max/null zone map for numeric and timestamp
// columns; other types record only the null count.
func zoneOf(c *column.Column) ZoneMap {
	z := ZoneMap{NullCount: uint32(c.NullCount())}
	n := c.Len()
	switch c.Type() {
	case keypath.TypeBigInt, keypath.TypeTimestamp:
		for i := 0; i < n; i++ {
			if c.IsNull(i) {
				continue
			}
			v := float64(c.Int(i))
			if !z.HasBounds || v < z.Min {
				z.Min = v
			}
			if !z.HasBounds || v > z.Max {
				z.Max = v
			}
			z.HasBounds = true
		}
	case keypath.TypeDouble:
		for i := 0; i < n; i++ {
			if c.IsNull(i) {
				continue
			}
			v := c.Float(i)
			if !z.HasBounds || v < z.Min {
				z.Min = v
			}
			if !z.HasBounds || v > z.Max {
				z.Max = v
			}
			z.HasBounds = true
		}
	}
	return z
}
