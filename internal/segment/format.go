// Package segment implements the on-disk persistence format for JSON
// tiles. A segment is a single file holding a whole relation: every
// tile's extracted columns and binary-JSON fallback as independently
// compressed, checksummed blocks, plus a footer with the tile headers
// (extracted paths, seen-paths bloom filters, zone maps) and the
// relation statistics.
//
// The layout mirrors how the paper's host system pages tiles through
// its buffer manager (§4.2: "JSON tiles are stored in a way that
// allows for an efficient scan... the metadata is stored separately
// from the data"): everything a query needs *before* touching data —
// tile skipping, column resolution, optimizer statistics — lives in
// the footer, so opening a segment reads the header, the fixed-size
// tail, and one footer block. Data blocks are then fetched lazily,
// only for the tiles that survive skipping and only for the columns
// the query accesses.
//
//	┌──────────────────────────────────────────────────────────┐
//	│ header magic "JTSEG001"                          8 bytes │
//	├──────────────────────────────────────────────────────────┤
//	│ block 0 │ block 1 │ ...            (LZ4 or raw, no gaps) │
//	│   per tile: one block per extracted column,              │
//	│   one block for the JSONB fallback documents             │
//	├──────────────────────────────────────────────────────────┤
//	│ footer block (LZ4): tile metadata, zone maps,            │
//	│   bloom filters, block refs, relation statistics         │
//	├──────────────────────────────────────────────────────────┤
//	│ tail: footer off u64, stored u32, raw u32, sum u64,      │
//	│       magic "JTSEGFTR"                          32 bytes │
//	└──────────────────────────────────────────────────────────┘
//
// Every block (footer included) carries an XXH64 checksum of its
// stored bytes, verified on every read before decompression.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/bloom"
	"repro/internal/keypath"
	"repro/internal/lz4"
	"repro/internal/stats"
)

const (
	// Magic opens the file; MagicFooter closes it. Both are 8 bytes so
	// a truncated or misdirected file fails before any length field is
	// trusted. Version 2 adds per-column dictionary blocks and string
	// zone bounds to the footer; readers still open MagicV1 files.
	Magic       = "JTSEG002"
	MagicV1     = "JTSEG001"
	MagicFooter = "JTSEGFTR"

	// TailSize is the fixed-size trailer: footer offset (8), stored
	// length (4), raw length (4), checksum (8), closing magic (8).
	TailSize = 8 + 4 + 4 + 8 + 8

	// codecRaw stores bytes verbatim; codecLZ4 stores an LZ4 block.
	codecRaw = 0
	codecLZ4 = 1

	// blockRefSize is the encoded size of a BlockRef: offset (8),
	// stored length (4), raw length (4), codec (1), checksum (8).
	blockRefSize = 8 + 4 + 4 + 1 + 8
)

// ErrCorrupt reports a segment that fails structural validation:
// bad magic, impossible offsets or lengths, checksum mismatches, or
// undecodable metadata.
var ErrCorrupt = errors.New("segment: corrupt segment file")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// BlockRef locates one compressed block inside the segment file.
type BlockRef struct {
	// Off is the byte offset of the stored block.
	Off uint64
	// StoredLen is the on-disk length; RawLen the decompressed length.
	StoredLen uint32
	RawLen    uint32
	// Codec is codecRaw or codecLZ4.
	Codec uint8
	// Sum is the XXH64 checksum of the stored bytes.
	Sum uint64
}

// ZoneMap is the per-column min/max/null summary used for tile
// pruning on numeric predicates. Bounds are stored as float64
// (timestamp microseconds stay exact below 2^53, beyond any
// representable date).
type ZoneMap struct {
	HasBounds bool
	Min, Max  float64
	NullCount uint32

	// String bounds (v2, dictionary columns): the first and last entry
	// of the sorted dictionary — min/max fall straight out of the
	// dictionary order, no scan needed.
	HasStrBounds bool
	MinStr       string
	MaxStr       string
}

// ColumnMeta describes one extracted column of one tile.
type ColumnMeta struct {
	Path            string
	MinedType       keypath.ValueType
	StorageType     keypath.ValueType
	HasTypeOutliers bool
	Block           BlockRef
	Zone            ZoneMap

	// HasDict (v2) marks a dictionary-encoded text column: Block holds
	// the per-row codes (column.SerializeCodes) and Dict the sorted
	// distinct-value arena (column.SerializeDict), each its own
	// checksummed, pool-cached block shared per tile.
	HasDict bool
	Dict    BlockRef
}

// TileMeta is the footer's record of one tile: everything needed for
// tile skipping and column resolution without reading a data block.
type TileMeta struct {
	Rows    int
	Docs    BlockRef
	Columns []ColumnMeta

	seen   *bloom.Filter    // seen-but-not-extracted paths
	byPath map[string][]int // extracted path -> column indexes
}

// MayContainPath mirrors tile.Tile.MayContainPath: true when the path
// is extracted or the seen-paths bloom filter matches; false
// guarantees every access yields null, enabling the skip (§4.8).
func (tm *TileMeta) MayContainPath(path string) bool {
	if _, ok := tm.byPath[path]; ok {
		return true
	}
	return tm.seen.MayContain(path)
}

// ColumnsForPath returns the indexes of all columns extracted for the
// path.
func (tm *TileMeta) ColumnsForPath(path string) []int { return tm.byPath[path] }

func (tm *TileMeta) buildIndex() {
	tm.byPath = make(map[string][]int, len(tm.Columns))
	for i, c := range tm.Columns {
		tm.byPath[c.Path] = append(tm.byPath[c.Path], i)
	}
}

// footer is the decoded footer payload.
type footer struct {
	tiles []TileMeta
	stats *stats.TableStats
}

// encodeFooter serializes tile metadata and relation statistics into
// the (pre-compression) footer payload. version 1 reproduces the
// legacy JTSEG001 layout byte-for-byte; version 2 appends the
// dictionary block ref and string zone bounds to each column record.
func encodeFooter(tiles []TileMeta, st *stats.TableStats, version int) []byte {
	var out []byte
	var tmp [8]byte
	pu32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		out = append(out, tmp[:4]...)
	}
	pu64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		out = append(out, tmp[:]...)
	}
	pref := func(r BlockRef) {
		pu64(r.Off)
		pu32(r.StoredLen)
		pu32(r.RawLen)
		out = append(out, r.Codec)
		pu64(r.Sum)
	}

	pu32(uint32(len(tiles)))
	for i := range tiles {
		tm := &tiles[i]
		pu32(uint32(tm.Rows))
		pref(tm.Docs)
		pu32(uint32(len(tm.Columns)))
		for _, c := range tm.Columns {
			pu32(uint32(len(c.Path)))
			out = append(out, c.Path...)
			out = append(out, byte(c.MinedType), byte(c.StorageType))
			if c.HasTypeOutliers {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
			pref(c.Block)
			if c.Zone.HasBounds {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
			pu64(math.Float64bits(c.Zone.Min))
			pu64(math.Float64bits(c.Zone.Max))
			pu32(c.Zone.NullCount)
			if version >= 2 {
				if c.HasDict {
					out = append(out, 1)
					pref(c.Dict)
				} else {
					out = append(out, 0)
				}
				if c.Zone.HasStrBounds {
					out = append(out, 1)
					pu32(uint32(len(c.Zone.MinStr)))
					out = append(out, c.Zone.MinStr...)
					pu32(uint32(len(c.Zone.MaxStr)))
					out = append(out, c.Zone.MaxStr...)
				} else {
					out = append(out, 0)
				}
			}
		}
		bits := tm.seen.Bits()
		pu32(uint32(tm.seen.K()))
		pu32(uint32(len(bits)))
		for _, w := range bits {
			pu64(w)
		}
	}
	sb := st.MarshalBinary()
	pu32(uint32(len(sb)))
	out = append(out, sb...)
	return out
}

// decodeFooter parses a footer payload, validating every length field
// against the remaining buffer so corrupt footers produce ErrCorrupt
// instead of panics or unbounded allocations. version selects the
// column-record layout (1 = legacy JTSEG001, 2 = dictionary-aware).
func decodeFooter(b []byte, fileSize uint64, version int) (*footer, error) {
	d := &footerDecoder{b: b}
	nTiles := int(d.u32())
	if d.err != nil || nTiles < 0 || nTiles > len(b) {
		return nil, corruptf("implausible tile count %d", nTiles)
	}
	f := &footer{tiles: make([]TileMeta, 0, min(nTiles, 4096))}
	for i := 0; i < nTiles; i++ {
		var tm TileMeta
		tm.Rows = int(d.u32())
		tm.Docs = d.ref()
		nCols := int(d.u32())
		if d.err != nil || nCols < 0 || nCols > len(d.b)+1 {
			return nil, corruptf("tile %d: implausible column count %d", i, nCols)
		}
		tm.Columns = make([]ColumnMeta, 0, min(nCols, 4096))
		for j := 0; j < nCols; j++ {
			var c ColumnMeta
			c.Path = d.str()
			c.MinedType = keypath.ValueType(d.u8())
			c.StorageType = keypath.ValueType(d.u8())
			c.HasTypeOutliers = d.u8() != 0
			c.Block = d.ref()
			c.Zone.HasBounds = d.u8() != 0
			c.Zone.Min = math.Float64frombits(d.u64())
			c.Zone.Max = math.Float64frombits(d.u64())
			c.Zone.NullCount = d.u32()
			if version >= 2 {
				if c.HasDict = d.u8() != 0; c.HasDict {
					c.Dict = d.ref()
				}
				if c.Zone.HasStrBounds = d.u8() != 0; c.Zone.HasStrBounds {
					c.Zone.MinStr = d.str()
					c.Zone.MaxStr = d.str()
				}
			}
			if d.err != nil {
				return nil, corruptf("tile %d column %d: truncated", i, j)
			}
			if err := checkRef(c.Block, fileSize); err != nil {
				return nil, fmt.Errorf("tile %d column %q: %w", i, c.Path, err)
			}
			if c.HasDict {
				if err := checkRef(c.Dict, fileSize); err != nil {
					return nil, fmt.Errorf("tile %d column %q dict: %w", i, c.Path, err)
				}
			}
			tm.Columns = append(tm.Columns, c)
		}
		k := int(d.u32())
		nWords := int(d.u32())
		if d.err != nil || nWords < 0 || nWords*8 > len(d.b) {
			return nil, corruptf("tile %d: implausible bloom size %d", i, nWords)
		}
		words := make([]uint64, nWords)
		for w := range words {
			words[w] = d.u64()
		}
		tm.seen = bloom.FromBits(words, k)
		if d.err != nil {
			return nil, corruptf("tile %d: truncated metadata", i)
		}
		if err := checkRef(tm.Docs, fileSize); err != nil {
			return nil, fmt.Errorf("tile %d docs: %w", i, err)
		}
		tm.buildIndex()
		f.tiles = append(f.tiles, tm)
	}
	sb := d.bytes(int(d.u32()))
	if d.err != nil {
		return nil, corruptf("truncated statistics")
	}
	st, err := stats.UnmarshalBinary(sb)
	if err != nil {
		return nil, fmt.Errorf("%w: statistics: %v", ErrCorrupt, err)
	}
	f.stats = st
	if len(d.b) != 0 {
		return nil, corruptf("%d trailing footer bytes", len(d.b))
	}
	return f, nil
}

// checkRef rejects block refs that point outside the file or declare
// impossible lengths, before anything is read or allocated.
func checkRef(r BlockRef, fileSize uint64) error {
	if r.Codec != codecRaw && r.Codec != codecLZ4 {
		return corruptf("unknown codec %d", r.Codec)
	}
	if r.Off < uint64(len(Magic)) || r.Off+uint64(r.StoredLen) < r.Off ||
		r.Off+uint64(r.StoredLen) > fileSize {
		return corruptf("block [%d,+%d) outside file of %d bytes", r.Off, r.StoredLen, fileSize)
	}
	if r.Codec == codecRaw && r.StoredLen != r.RawLen {
		return corruptf("raw block with stored %d != raw %d", r.StoredLen, r.RawLen)
	}
	if int64(r.RawLen) > lz4.MaxDecompressedSize {
		return corruptf("block declares %d decompressed bytes", r.RawLen)
	}
	return nil
}

type footerDecoder struct {
	b   []byte
	err error
}

func (d *footerDecoder) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.err = ErrCorrupt
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *footerDecoder) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.err = ErrCorrupt
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *footerDecoder) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.err = ErrCorrupt
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *footerDecoder) bytes(n int) []byte {
	if d.err != nil || n < 0 || len(d.b) < n {
		d.err = ErrCorrupt
		return nil
	}
	v := d.b[:n:n]
	d.b = d.b[n:]
	return v
}

func (d *footerDecoder) str() string { return string(d.bytes(int(d.u32()))) }

func (d *footerDecoder) ref() BlockRef {
	return BlockRef{
		Off:       d.u64(),
		StoredLen: d.u32(),
		RawLen:    d.u32(),
		Codec:     d.u8(),
		Sum:       d.u64(),
	}
}
