package segment

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/blockstore"
	"repro/internal/obs"
	"repro/internal/stats"
)

// MergeFiles writes a new segment at path holding every tile of srcs,
// in order. Stored blocks are copied verbatim — already-compressed,
// already-checksummed bytes move without a decompress/recompress
// round trip, so merge cost is I/O-bound on the inputs' physical
// size. The merged footer concatenates the sources' tile metadata
// (with relocated block refs) and carries the merged relation
// statistics. Returns the merged file's size in bytes.
//
// Like WriteFile, the output is written to a temporary sibling and
// renamed into place, so a crashed merge never leaves a half-segment
// under the target name.
func MergeFiles(path string, srcs []*Reader) (int64, error) {
	start := time.Now()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	n, err := Merge(f, srcs)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	obs.SegmentWriteSeconds.ObserveSince(start)
	obs.SegmentWriteBytes.Observe(float64(n))
	return n, nil
}

// MergeStore merges srcs into the store under name (see Merge): the
// stream is built in memory and atomically published with one Put.
// Returns the object's size in bytes.
func MergeStore(store blockstore.Store, name string, srcs []*Reader) (int64, error) {
	start := time.Now()
	var buf bytes.Buffer
	n, err := Merge(&buf, srcs)
	if err != nil {
		return 0, err
	}
	if err := store.Put(name, buf.Bytes()); err != nil {
		return 0, err
	}
	obs.SegmentWriteSeconds.ObserveSince(start)
	obs.SegmentWriteBytes.Observe(float64(n))
	return n, nil
}

// Merge serializes the concatenation of srcs' tiles to w as one
// version-2 segment stream, returning the bytes written. Version-1
// sources merge cleanly into the version-2 container: block payloads
// are identical across versions, only the footer layout differs.
func Merge(w io.Writer, srcs []*Reader) (int64, error) {
	bw := &blockWriter{w: bufio.NewWriterSize(w, 1<<20)}
	if err := bw.raw([]byte(Magic)); err != nil {
		return 0, err
	}
	copyBlock := func(src *Reader, ref BlockRef) (BlockRef, error) {
		stored, err := src.readStored(ref)
		if err != nil {
			return BlockRef{}, err
		}
		out := ref
		out.Off = bw.off
		if err := bw.raw(stored); err != nil {
			return BlockRef{}, err
		}
		return out, nil
	}

	st := stats.New(0, 0)
	var metas []TileMeta
	for si, src := range srcs {
		st.Merge(src.Stats())
		for ti := range src.tiles {
			tm := src.tiles[ti] // shallow copy; seen filter is shared read-only
			tm.Columns = append([]ColumnMeta(nil), tm.Columns...)
			var err error
			if tm.Docs, err = copyBlock(src, tm.Docs); err != nil {
				return 0, fmt.Errorf("source %d tile %d docs: %w", si, ti, err)
			}
			for j := range tm.Columns {
				cm := &tm.Columns[j]
				if cm.Block, err = copyBlock(src, cm.Block); err != nil {
					return 0, fmt.Errorf("source %d tile %d column %q: %w", si, ti, cm.Path, err)
				}
				if cm.HasDict {
					if cm.Dict, err = copyBlock(src, cm.Dict); err != nil {
						return 0, fmt.Errorf("source %d tile %d column %q dict: %w", si, ti, cm.Path, err)
					}
				}
			}
			metas = append(metas, tm)
		}
	}

	footerRef, err := bw.block(encodeFooter(metas, st, 2))
	if err != nil {
		return 0, fmt.Errorf("footer: %w", err)
	}
	var tail [TailSize]byte
	binary.LittleEndian.PutUint64(tail[0:], footerRef.Off)
	binary.LittleEndian.PutUint32(tail[8:], footerRef.StoredLen)
	binary.LittleEndian.PutUint32(tail[12:], footerRef.RawLen)
	binary.LittleEndian.PutUint64(tail[16:], footerRef.Sum)
	copy(tail[24:], MagicFooter)
	if err := bw.raw(tail[:]); err != nil {
		return 0, err
	}
	if err := bw.w.Flush(); err != nil {
		return 0, err
	}
	return int64(bw.off), nil
}
