package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"repro/internal/blockstore"
	"repro/internal/bufpool"
	"repro/internal/column"
	"repro/internal/lz4"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/xxhash"
)

// Reader reads one open segment object through a block store. All
// block reads flow through the buffer pool: a hit returns resident
// decompressed bytes, a miss issues a ranged read (with transient
// retries), verifies the checksum, decompresses, and caches the
// payload. A Reader is safe for concurrent use.
type Reader struct {
	store    blockstore.Store
	name     string // object name within the store
	ownStore bool   // Open created the store; Close closes it
	fileSize uint64
	fileID   uint64
	pool     *bufpool.Pool
	gap      int64 // coalescing gap threshold (readahead fetches)
	tiles    []TileMeta
	stats    *stats.TableStats
	version  int // 1 = legacy JTSEG001, 2 = dictionary-aware
}

// ReadInfo reports what one logical block access cost: whether the
// buffer pool already had the payload, whether that hit was the first
// access to a block a fetch pass made resident (Warmed — the fetch
// already accounted the miss; Prefetched narrows it to asynchronous
// readahead), and — on a miss — the stored bytes fetched, the ranged
// read requests issued (retry attempts included), and how many of
// those were transient-failure retries.
type ReadInfo struct {
	Hit         bool
	Warmed      bool
	Prefetched  bool
	StoredBytes int
	RangeReads  int
	Retries     int
}

// FetchInfo aggregates one coalesced block fetch (FetchBlocks): the
// ranged read requests issued (retries included), the payload bytes
// those requests returned (gap bytes included), blocks made resident,
// block fetches saved by coalescing, and transient retries.
type FetchInfo struct {
	RangeReads int64
	BytesRead  int64
	Blocks     int64
	Coalesced  int64
	Retries    int64
}

// openTailWindow is the speculative trailing read Open issues: one
// ranged read that, for most segments, covers the fixed tail and the
// whole footer block (and, for small segments, the entire object), so
// opening costs one or two store requests instead of three or four.
const openTailWindow = 64 << 10

// Open opens a segment file on the local filesystem — the path-based
// compatibility wrapper over OpenStore. The returned Reader owns its
// private FS store and closes it on Close.
func Open(path string, pool *bufpool.Pool) (*Reader, error) {
	store, err := blockstore.NewFS(filepath.Dir(path))
	if err != nil {
		return nil, err
	}
	r, err := OpenStore(store, filepath.Base(path), pool)
	if err != nil {
		blockstore.Close(store)
		return nil, err
	}
	r.ownStore = true
	return r, nil
}

// OpenStore opens the named segment object footer-first: one
// speculative ranged read of the object's tail (covering the fixed
// tail, usually the footer, and for small objects the header too),
// plus at most two follow-up reads when the footer or header fall
// outside the window. Tile metadata, zone maps, bloom filters, and
// relation statistics are then in memory; data blocks load lazily —
// scans fetch only the blocks their zone-map-surviving tiles touch.
// The Reader does not own the store: closing the Reader drops its
// cached blocks but leaves the store open.
func OpenStore(store blockstore.Store, name string, pool *bufpool.Pool) (*Reader, error) {
	start := time.Now()
	size, err := store.Size(name)
	if err != nil {
		return nil, err
	}
	if size < int64(len(Magic))+TailSize {
		return nil, corruptf("%s: object of %d bytes is smaller than header plus tail", name, size)
	}
	win := int64(openTailWindow)
	if win > size {
		win = size
	}
	winOff := size - win
	winBuf, _, err := blockstore.ReadRangeRetry(store, name, winOff, win, 0)
	if err != nil {
		return nil, fmt.Errorf("segment %s: open tail [%d,+%d): %w", name, winOff, win, err)
	}

	tail := winBuf[win-TailSize:]
	if string(tail[24:32]) != MagicFooter {
		return nil, corruptf("%s: bad tail magic %q in tail [%d,+%d)", name, tail[24:32], size-TailSize, TailSize)
	}
	footerRef := BlockRef{
		Off:       binary.LittleEndian.Uint64(tail[0:]),
		StoredLen: binary.LittleEndian.Uint32(tail[8:]),
		RawLen:    binary.LittleEndian.Uint32(tail[12:]),
		Sum:       binary.LittleEndian.Uint64(tail[16:]),
		Codec:     codecLZ4,
	}
	if footerRef.StoredLen == footerRef.RawLen {
		// The footer block writer stores raw when LZ4 cannot shrink it;
		// equal lengths are only produced by the raw path.
		footerRef.Codec = codecRaw
	}
	// The footer must sit between the header and the tail.
	if err := checkRef(footerRef, uint64(size)-TailSize); err != nil {
		return nil, fmt.Errorf("segment %s: footer: %w", name, err)
	}

	r := &Reader{
		store:    store,
		name:     name,
		fileSize: uint64(size),
		gap:      blockstore.DefaultCoalesceGap,
	}

	// Header: the version magic. Usually already inside the window.
	var head []byte
	if winOff == 0 {
		head = winBuf[:len(Magic)]
	} else {
		head, _, err = blockstore.ReadRangeRetry(store, name, 0, int64(len(Magic)), 0)
		if err != nil {
			return nil, fmt.Errorf("segment %s: open header [0,+%d): %w", name, len(Magic), err)
		}
	}
	switch string(head) {
	case Magic:
		r.version = 2
	case MagicV1:
		r.version = 1
	default:
		return nil, corruptf("%s: bad header magic %q", name, head)
	}

	// Footer block: served from the window when it fits, read
	// separately otherwise (very wide segments).
	var footerStored []byte
	if int64(footerRef.Off) >= winOff {
		footerStored = winBuf[int64(footerRef.Off)-winOff:][:footerRef.StoredLen]
		if sum := xxhash.Sum64(footerStored); sum != footerRef.Sum {
			return nil, r.corruptBlock(footerRef, "footer checksum %016x, want %016x", sum, footerRef.Sum)
		}
	} else {
		footerStored, err = r.readStored(footerRef)
		if err != nil {
			return nil, fmt.Errorf("footer: %w", err)
		}
	}
	footerRaw, err := r.decodeStored(footerRef, footerStored)
	if err != nil {
		return nil, fmt.Errorf("footer: %w", err)
	}
	ftr, err := decodeFooter(footerRaw, uint64(size)-TailSize, r.version)
	if err != nil {
		return nil, fmt.Errorf("segment %s: %w", name, err)
	}
	r.tiles = ftr.tiles
	r.stats = ftr.stats
	r.pool = pool
	if pool != nil {
		r.fileID = pool.RegisterObject(store.Label() + "/" + name)
	}
	obs.SegmentOpenSeconds.ObserveSince(start)
	return r, nil
}

// SetCoalesceGap tunes the readahead coalescing gap threshold: block
// refs whose dead space is at most gap bytes merge into one ranged
// read. 0 restores the default; negative disables merging.
func (r *Reader) SetCoalesceGap(gap int64) {
	if gap == 0 {
		gap = blockstore.DefaultCoalesceGap
	}
	r.gap = gap
}

// Close drops this object's resident blocks from the shared pool and,
// for path-opened readers, closes the private store.
func (r *Reader) Close() error {
	if r.pool != nil {
		r.pool.DropFile(r.fileID)
	}
	if r.ownStore {
		return blockstore.Close(r.store)
	}
	return nil
}

// Name returns the segment's object name within its store.
func (r *Reader) Name() string { return r.name }

// NumTiles returns the number of tiles in the segment.
func (r *Reader) NumTiles() int { return len(r.tiles) }

// FileSize returns the segment object's size in bytes.
func (r *Reader) FileSize() int64 { return int64(r.fileSize) }

// Tile returns the metadata of tile i. Read-only.
func (r *Reader) Tile(i int) *TileMeta { return &r.tiles[i] }

// Version returns the on-disk format version (1 = legacy JTSEG001,
// 2 = dictionary-aware).
func (r *Reader) Version() int { return r.version }

// Stats returns the relation statistics persisted in the footer.
func (r *Reader) Stats() *stats.TableStats { return r.stats }

// NumRows returns the total row count across all tiles.
func (r *Reader) NumRows() int {
	total := 0
	for i := range r.tiles {
		total += r.tiles[i].Rows
	}
	return total
}

// Column reads and deserializes one extracted column. Block payloads
// are fetched through the pool; the deserialized column copies out of
// them, so the returned column has no ties to pool memory. A
// dictionary column costs two block accesses (codes + dictionary),
// reported as separate ReadInfo entries.
func (r *Reader) Column(tileIdx, colIdx int) (*column.Column, []ReadInfo, error) {
	return r.ColumnT("", tileIdx, colIdx)
}

// ColumnT is Column with the loading tenant: cache misses it causes
// are charged against tenant's buffer-pool quota ("" = unattributed).
func (r *Reader) ColumnT(tenant string, tileIdx, colIdx int) (*column.Column, []ReadInfo, error) {
	cm := &r.tiles[tileIdx].Columns[colIdx]
	payload, info, err := r.pooledBlock(tenant, cm.Block)
	infos := []ReadInfo{info}
	if err != nil {
		return nil, infos, fmt.Errorf("tile %d column %q: %w", tileIdx, cm.Path, err)
	}
	var col *column.Column
	if cm.HasDict {
		dictPayload, dinfo, derr := r.pooledBlock(tenant, cm.Dict)
		infos = append(infos, dinfo)
		if derr != nil {
			return nil, infos, fmt.Errorf("tile %d column %q dict: %w", tileIdx, cm.Path, derr)
		}
		col, err = column.DeserializeDict(payload, dictPayload)
	} else {
		col, err = column.Deserialize(payload)
	}
	if err != nil {
		return nil, infos, fmt.Errorf("tile %d column %q: %w", tileIdx, cm.Path, err)
	}
	if col.Len() != r.tiles[tileIdx].Rows || col.Type() != cm.StorageType {
		return nil, infos, fmt.Errorf("tile %d column %q: %w", tileIdx, cm.Path,
			corruptf("%s: block [%d,+%d) decodes to %d rows of type %d, footer says %d rows of type %d",
				r.name, cm.Block.Off, cm.Block.StoredLen,
				col.Len(), col.Type(), r.tiles[tileIdx].Rows, cm.StorageType))
	}
	return col, infos, nil
}

// Docs reads tile i's binary-JSON fallback documents. The returned
// slices alias pool-cached memory: valid indefinitely (the payload is
// immutable and garbage-collected), but each scan should re-fetch so
// the pool sees the access.
func (r *Reader) Docs(tileIdx int) ([][]byte, ReadInfo, error) {
	return r.DocsT("", tileIdx)
}

// DocsT is Docs with the loading tenant (see ColumnT).
func (r *Reader) DocsT(tenant string, tileIdx int) ([][]byte, ReadInfo, error) {
	tm := &r.tiles[tileIdx]
	payload, info, err := r.pooledBlock(tenant, tm.Docs)
	if err != nil {
		return nil, info, fmt.Errorf("tile %d docs: %w", tileIdx, err)
	}
	docs, err := decodeDocs(payload, tm.Rows)
	if err != nil {
		return nil, info, fmt.Errorf("tile %d: %w", tileIdx, err)
	}
	return docs, info, nil
}

// FetchBlocks makes refs' payloads pool-resident with as few store
// requests as possible: refs not already cached are sorted by offset,
// adjacent refs within the coalescing gap merge into single ranged
// reads, and each block is verified, decompressed, and inserted
// unpinned. prefetched marks the insertions for prefetch-hit
// accounting (the asynchronous readahead path sets it; synchronous
// pre-scan fetches do not). Failures are not returned: a block whose
// run failed simply stays non-resident and the demand path reports
// the error with full context when the scan actually needs it.
func (r *Reader) FetchBlocks(tenant string, refs []BlockRef, prefetched bool) FetchInfo {
	var fi FetchInfo
	if r.pool == nil || len(refs) == 0 {
		return fi
	}
	// Drop refs already resident, dedupe by offset, sort.
	want := make([]BlockRef, 0, len(refs))
	seen := make(map[uint64]bool, len(refs))
	for _, ref := range refs {
		if seen[ref.Off] || r.pool.Contains(bufpool.Key{File: r.fileID, Off: ref.Off}) {
			continue
		}
		seen[ref.Off] = true
		want = append(want, ref)
	}
	if len(want) == 0 {
		return fi
	}
	sortRefs(want)
	ranges := make([]blockstore.Range, len(want))
	for i, ref := range want {
		ranges[i] = blockstore.Range{Off: int64(ref.Off), Len: int64(ref.StoredLen)}
	}
	runs := blockstore.Coalesce(ranges, r.gap, 0)
	idx := 0
	for _, run := range runs {
		blocks := want[idx : idx+run.Blocks]
		idx += run.Blocks
		buf, retries, err := blockstore.ReadRangeRetry(r.store, r.name, run.Off, run.Len, 0)
		fi.RangeReads += int64(1 + retries)
		fi.Retries += int64(retries)
		if err != nil {
			continue
		}
		fi.BytesRead += run.Len
		if run.Blocks > 1 {
			fi.Coalesced += int64(run.Blocks - 1)
		}
		for _, ref := range blocks {
			stored := buf[int64(ref.Off)-run.Off:][:ref.StoredLen]
			if xxhash.Sum64(stored) != ref.Sum {
				continue // demand path re-reads and reports
			}
			payload, err := r.decodeStored(ref, stored)
			if err != nil {
				continue
			}
			if r.pool.Put(tenant, bufpool.Key{File: r.fileID, Off: ref.Off}, payload, prefetched) {
				fi.Blocks++
			}
		}
	}
	obs.StoreReadCoalesced.Add(fi.Coalesced)
	return fi
}

// isShortRead reports a ranged read that ran past the object's end.
func isShortRead(err error) bool { return errors.Is(err, io.ErrUnexpectedEOF) }

// sortRefs orders refs by offset (insertion sort: ref lists are a
// handful of blocks per tile).
func sortRefs(refs []BlockRef) {
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refs[j].Off < refs[j-1].Off; j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
}

// pooledBlock fetches one block's decompressed payload through the
// buffer pool (or directly when the reader has no pool, as during
// Open before registration).
func (r *Reader) pooledBlock(tenant string, ref BlockRef) ([]byte, ReadInfo, error) {
	if r.pool == nil {
		b, retries, err := r.readBlock(ref)
		return b, ReadInfo{StoredBytes: int(ref.StoredLen), RangeReads: 1 + retries, Retries: retries}, err
	}
	var retries int
	h, err := r.pool.GetAs(tenant, bufpool.Key{File: r.fileID, Off: ref.Off}, func() ([]byte, error) {
		b, n, err := r.readBlock(ref)
		retries = n
		return b, err
	})
	if err != nil {
		return nil, ReadInfo{}, err
	}
	info := ReadInfo{Hit: h.Hit, Warmed: h.Warmed, Prefetched: h.Prefetched}
	if !h.Hit {
		info.StoredBytes = int(ref.StoredLen)
		info.RangeReads = 1 + retries
		info.Retries = retries
	}
	b := h.Bytes()
	h.Release()
	return b, info, nil
}

// corruptBlock builds an ErrCorrupt with the object name and byte
// range every corruption report must carry (remote stores serve many
// objects; "block at 4096" without a name is undebuggable).
func (r *Reader) corruptBlock(ref BlockRef, format string, args ...any) error {
	prefix := fmt.Sprintf("%s: block [%d,+%d): ", r.name, ref.Off, ref.StoredLen)
	return corruptf(prefix+format, args...)
}

// readStored reads and checksum-verifies one block's stored bytes
// without decompressing — merges copy blocks verbatim through this.
// Transient store errors are retried with backoff before failing.
func (r *Reader) readStored(ref BlockRef) ([]byte, error) {
	b, _, err := r.readStoredRetry(ref)
	return b, err
}

func (r *Reader) readStoredRetry(ref BlockRef) ([]byte, int, error) {
	stored, retries, err := blockstore.ReadRangeRetry(r.store, r.name, int64(ref.Off), int64(ref.StoredLen), 0)
	if err != nil {
		if blockstore.IsNotExist(err) || isShortRead(err) {
			return nil, retries, r.corruptBlock(ref, "truncated or missing: %v", err)
		}
		return nil, retries, fmt.Errorf("segment %s: block [%d,+%d): %w", r.name, ref.Off, ref.StoredLen, err)
	}
	if sum := xxhash.Sum64(stored); sum != ref.Sum {
		return nil, retries, r.corruptBlock(ref, "checksum %016x, want %016x", sum, ref.Sum)
	}
	return stored, retries, nil
}

// decodeStored decompresses one verified stored block.
func (r *Reader) decodeStored(ref BlockRef, stored []byte) ([]byte, error) {
	if ref.Codec == codecRaw {
		return stored, nil
	}
	raw, err := lz4.DecompressAlloc(stored, int(ref.RawLen))
	if err != nil {
		return nil, r.corruptBlock(ref, "lz4: %v", err)
	}
	return raw, nil
}

// readBlock reads, verifies, and decompresses one block, reporting
// the transient retries taken.
func (r *Reader) readBlock(ref BlockRef) ([]byte, int, error) {
	stored, retries, err := r.readStoredRetry(ref)
	if err != nil {
		return nil, retries, err
	}
	raw, err := r.decodeStored(ref, stored)
	return raw, retries, err
}
