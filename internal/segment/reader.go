package segment

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bufpool"
	"repro/internal/column"
	"repro/internal/lz4"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/xxhash"
)

// Reader reads one open segment file. All block reads flow through
// the buffer pool: a hit returns resident decompressed bytes, a miss
// reads the stored block, verifies its checksum, decompresses, and
// caches the payload. A Reader is safe for concurrent use.
type Reader struct {
	f        *os.File
	fileSize uint64
	fileID   uint64
	pool     *bufpool.Pool
	tiles    []TileMeta
	stats    *stats.TableStats
	version  int // 1 = legacy JTSEG001, 2 = dictionary-aware
}

// ReadInfo reports what one logical block access cost: whether the
// buffer pool already had the payload, and how many stored bytes were
// read from disk on a miss (zero on a hit). Scans aggregate these
// into per-query I/O statistics.
type ReadInfo struct {
	Hit         bool
	StoredBytes int
}

// Open maps a segment file. Only the header, the fixed tail, and the
// footer block are read — tile metadata, zone maps, bloom filters,
// and relation statistics are then in memory, and data blocks load
// lazily through the pool. The returned Reader owns the file handle.
func Open(path string, pool *bufpool.Pool) (*Reader, error) {
	start := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := openFile(f, pool)
	if err != nil {
		f.Close()
		return nil, err
	}
	obs.SegmentOpenSeconds.ObserveSince(start)
	return r, nil
}

func openFile(f *os.File, pool *bufpool.Pool) (*Reader, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < int64(len(Magic))+TailSize {
		return nil, corruptf("file of %d bytes is smaller than header plus tail", size)
	}

	var head [len(Magic)]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return nil, err
	}
	version := 0
	switch string(head[:]) {
	case Magic:
		version = 2
	case MagicV1:
		version = 1
	default:
		return nil, corruptf("bad header magic %q", head[:])
	}

	var tail [TailSize]byte
	if _, err := f.ReadAt(tail[:], size-TailSize); err != nil {
		return nil, err
	}
	if string(tail[24:32]) != MagicFooter {
		return nil, corruptf("bad tail magic %q", tail[24:32])
	}
	footerRef := BlockRef{
		Off:       binary.LittleEndian.Uint64(tail[0:]),
		StoredLen: binary.LittleEndian.Uint32(tail[8:]),
		RawLen:    binary.LittleEndian.Uint32(tail[12:]),
		Sum:       binary.LittleEndian.Uint64(tail[16:]),
		Codec:     codecLZ4,
	}
	if footerRef.StoredLen == footerRef.RawLen {
		// The footer block writer stores raw when LZ4 cannot shrink it;
		// equal lengths are only produced by the raw path.
		footerRef.Codec = codecRaw
	}
	// The footer must sit between the header and the tail.
	if err := checkRef(footerRef, uint64(size)-TailSize); err != nil {
		return nil, fmt.Errorf("footer: %w", err)
	}

	r := &Reader{f: f, fileSize: uint64(size), version: version}
	footerRaw, err := r.readBlock(footerRef)
	if err != nil {
		return nil, fmt.Errorf("footer: %w", err)
	}
	ftr, err := decodeFooter(footerRaw, uint64(size)-TailSize, version)
	if err != nil {
		return nil, err
	}
	r.tiles = ftr.tiles
	r.stats = ftr.stats
	r.pool = pool
	if pool != nil {
		r.fileID = pool.RegisterFile()
	}
	return r, nil
}

// Close releases the file handle and drops this file's resident
// blocks from the shared pool.
func (r *Reader) Close() error {
	if r.pool != nil {
		r.pool.DropFile(r.fileID)
	}
	return r.f.Close()
}

// NumTiles returns the number of tiles in the segment.
func (r *Reader) NumTiles() int { return len(r.tiles) }

// FileSize returns the segment file's size in bytes.
func (r *Reader) FileSize() int64 { return int64(r.fileSize) }

// Tile returns the metadata of tile i. Read-only.
func (r *Reader) Tile(i int) *TileMeta { return &r.tiles[i] }

// Version returns the on-disk format version (1 = legacy JTSEG001,
// 2 = dictionary-aware).
func (r *Reader) Version() int { return r.version }

// Stats returns the relation statistics persisted in the footer.
func (r *Reader) Stats() *stats.TableStats { return r.stats }

// NumRows returns the total row count across all tiles.
func (r *Reader) NumRows() int {
	total := 0
	for i := range r.tiles {
		total += r.tiles[i].Rows
	}
	return total
}

// Column reads and deserializes one extracted column. Block payloads
// are fetched through the pool; the deserialized column copies out of
// them, so the returned column has no ties to pool memory. A
// dictionary column costs two block accesses (codes + dictionary),
// reported as separate ReadInfo entries.
func (r *Reader) Column(tileIdx, colIdx int) (*column.Column, []ReadInfo, error) {
	return r.ColumnT("", tileIdx, colIdx)
}

// ColumnT is Column with the loading tenant: cache misses it causes
// are charged against tenant's buffer-pool quota ("" = unattributed).
func (r *Reader) ColumnT(tenant string, tileIdx, colIdx int) (*column.Column, []ReadInfo, error) {
	cm := &r.tiles[tileIdx].Columns[colIdx]
	payload, info, err := r.pooledBlock(tenant, cm.Block)
	infos := []ReadInfo{info}
	if err != nil {
		return nil, infos, fmt.Errorf("tile %d column %q: %w", tileIdx, cm.Path, err)
	}
	var col *column.Column
	if cm.HasDict {
		dictPayload, dinfo, derr := r.pooledBlock(tenant, cm.Dict)
		infos = append(infos, dinfo)
		if derr != nil {
			return nil, infos, fmt.Errorf("tile %d column %q dict: %w", tileIdx, cm.Path, derr)
		}
		col, err = column.DeserializeDict(payload, dictPayload)
	} else {
		col, err = column.Deserialize(payload)
	}
	if err != nil {
		return nil, infos, fmt.Errorf("tile %d column %q: %w", tileIdx, cm.Path, err)
	}
	if col.Len() != r.tiles[tileIdx].Rows || col.Type() != cm.StorageType {
		return nil, infos, fmt.Errorf("tile %d column %q: %w", tileIdx, cm.Path,
			corruptf("block decodes to %d rows of type %d, footer says %d rows of type %d",
				col.Len(), col.Type(), r.tiles[tileIdx].Rows, cm.StorageType))
	}
	return col, infos, nil
}

// Docs reads tile i's binary-JSON fallback documents. The returned
// slices alias pool-cached memory: valid indefinitely (the payload is
// immutable and garbage-collected), but each scan should re-fetch so
// the pool sees the access.
func (r *Reader) Docs(tileIdx int) ([][]byte, ReadInfo, error) {
	return r.DocsT("", tileIdx)
}

// DocsT is Docs with the loading tenant (see ColumnT).
func (r *Reader) DocsT(tenant string, tileIdx int) ([][]byte, ReadInfo, error) {
	tm := &r.tiles[tileIdx]
	payload, info, err := r.pooledBlock(tenant, tm.Docs)
	if err != nil {
		return nil, info, fmt.Errorf("tile %d docs: %w", tileIdx, err)
	}
	docs, err := decodeDocs(payload, tm.Rows)
	if err != nil {
		return nil, info, fmt.Errorf("tile %d: %w", tileIdx, err)
	}
	return docs, info, nil
}

// pooledBlock fetches one block's decompressed payload through the
// buffer pool (or directly when the reader has no pool, as during
// Open before registration).
func (r *Reader) pooledBlock(tenant string, ref BlockRef) ([]byte, ReadInfo, error) {
	if r.pool == nil {
		b, err := r.readBlock(ref)
		return b, ReadInfo{StoredBytes: int(ref.StoredLen)}, err
	}
	h, err := r.pool.GetAs(tenant, bufpool.Key{File: r.fileID, Off: ref.Off}, func() ([]byte, error) {
		return r.readBlock(ref)
	})
	if err != nil {
		return nil, ReadInfo{}, err
	}
	info := ReadInfo{Hit: h.Hit}
	if !h.Hit {
		info.StoredBytes = int(ref.StoredLen)
	}
	b := h.Bytes()
	h.Release()
	return b, info, nil
}

// readStored reads and checksum-verifies one block's stored bytes
// without decompressing — merges copy blocks verbatim through this.
func (r *Reader) readStored(ref BlockRef) ([]byte, error) {
	stored := make([]byte, ref.StoredLen)
	if _, err := r.f.ReadAt(stored, int64(ref.Off)); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, corruptf("block [%d,+%d) truncated", ref.Off, ref.StoredLen)
		}
		return nil, err
	}
	if sum := xxhash.Sum64(stored); sum != ref.Sum {
		return nil, corruptf("block at %d: checksum %016x, want %016x", ref.Off, sum, ref.Sum)
	}
	return stored, nil
}

// readBlock reads, verifies, and decompresses one block from disk.
func (r *Reader) readBlock(ref BlockRef) ([]byte, error) {
	stored, err := r.readStored(ref)
	if err != nil {
		return nil, err
	}
	if ref.Codec == codecRaw {
		return stored, nil
	}
	raw, err := lz4.DecompressAlloc(stored, int(ref.RawLen))
	if err != nil {
		return nil, fmt.Errorf("%w: block at %d: %v", ErrCorrupt, ref.Off, err)
	}
	return raw, nil
}
