package exprparse

import "testing"

// FuzzParse: arbitrary access-expression strings must parse or error,
// never panic; successful parses yield a well-formed access whose
// path re-parses from its canonical encoding.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`data->>'l_orderkey'::BigInt`,
		`data->'user'->>'id'::Float`,
		`x->'a'->0->>'b'`,
		`data->'hashtags'->-1`,
		`d->>'it''s'`,
		`data->>'x'::`,
		`->'x'`,
		`data->'a'->`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := Parse(s)
		if err != nil {
			return
		}
		if a.PathEnc != a.Path.Encode() {
			t.Fatalf("PathEnc %q != Encode() %q", a.PathEnc, a.Path.Encode())
		}
	})
}
