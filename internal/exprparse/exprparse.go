// Package exprparse parses PostgreSQL-style JSON access expressions —
// the syntax used throughout the paper, e.g.
//
//	data->>'l_orderkey'::BigInt
//	data->'user'->>'id'::BigInt
//	data->'hashtags'->0->>'text'
//
// into pushed-down storage accesses. The cast, when present, is folded
// into the access's result type — this *is* the cast rewriting of
// §4.3: instead of producing Text and re-parsing, the scan serves the
// requested type directly.
package exprparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/keypath"
	"repro/internal/storage"
)

// Parse parses one access expression. The leading identifier names the
// JSON column (single-JSON-column tables make it informational).
func Parse(s string) (storage.Access, error) {
	p := &parser{s: s}
	return p.parse()
}

// MustParse is Parse for static expressions in queries and tests.
func MustParse(s string) storage.Access {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

type parser struct {
	s   string
	pos int
}

func (p *parser) parse() (storage.Access, error) {
	p.skipSpace()
	// Column identifier.
	col := p.ident()
	if col == "" {
		return storage.Access{}, p.errf("expected column identifier")
	}
	var path keypath.Path
	asText := false
	sawArrow := false
	for {
		p.skipSpace()
		if !p.consume("->") {
			break
		}
		sawArrow = true
		if p.consume(">") {
			asText = true
		}
		p.skipSpace()
		switch {
		case p.peek() == '\'':
			key, err := p.quoted()
			if err != nil {
				return storage.Access{}, err
			}
			path = path.Child(key)
		case p.peek() >= '0' && p.peek() <= '9' || p.peek() == '-':
			idx, err := p.number()
			if err != nil {
				return storage.Access{}, err
			}
			path = path.Slot(idx)
		default:
			return storage.Access{}, p.errf("expected 'key' or index after arrow")
		}
		if asText {
			break // ->> must be the last step
		}
	}
	if !sawArrow {
		return storage.Access{}, p.errf("expected -> or ->> operator")
	}
	p.skipSpace()
	// Optional cast.
	typ := expr.TJSON
	if asText {
		typ = expr.TText
	}
	if p.consume("::") {
		p.skipSpace()
		name := p.ident()
		t, err := TypeFromName(name)
		if err != nil {
			return storage.Access{}, err
		}
		if !asText {
			return storage.Access{}, p.errf("cast requires the ->> (text) access")
		}
		typ = t
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return storage.Access{}, p.errf("trailing input %q", p.s[p.pos:])
	}
	return storage.NewAccessPath(typ, path), nil
}

// TypeFromName maps SQL type names to engine types.
func TypeFromName(name string) (expr.SQLType, error) {
	switch strings.ToLower(name) {
	case "bigint", "int", "integer", "int8", "int4":
		return expr.TBigInt, nil
	case "float", "double", "decimal", "numeric", "float8", "real":
		return expr.TFloat, nil
	case "text", "varchar", "string":
		return expr.TText, nil
	case "bool", "boolean":
		return expr.TBool, nil
	case "date", "timestamp", "time", "timestamptz":
		return expr.TTimestamp, nil
	default:
		return expr.TNull, fmt.Errorf("exprparse: unknown type %q", name)
	}
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("exprparse: %s at offset %d in %q", fmt.Sprintf(format, args...), p.pos, p.s)
}

func (p *parser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.s) {
		return p.s[p.pos]
	}
	return 0
}

func (p *parser) consume(tok string) bool {
	if strings.HasPrefix(p.s[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) ident() string {
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			(p.pos > start && c >= '0' && c <= '9') {
			p.pos++
			continue
		}
		break
	}
	return p.s[start:p.pos]
}

func (p *parser) quoted() (string, error) {
	p.pos++ // opening quote
	var sb strings.Builder
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == '\'' {
			// Doubled quote escapes a quote (SQL).
			if p.pos+1 < len(p.s) && p.s[p.pos+1] == '\'' {
				sb.WriteByte('\'')
				p.pos += 2
				continue
			}
			p.pos++
			return sb.String(), nil
		}
		sb.WriteByte(c)
		p.pos++
	}
	return "", p.errf("unterminated string")
}

func (p *parser) number() (int, error) {
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
		p.pos++
	}
	n, err := strconv.Atoi(p.s[start:p.pos])
	if err != nil {
		return 0, p.errf("bad array index")
	}
	return n, nil
}
