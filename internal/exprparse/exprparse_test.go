package exprparse

import (
	"testing"

	"repro/internal/expr"
)

func TestParseAccess(t *testing.T) {
	tests := []struct {
		in   string
		path string
		typ  expr.SQLType
	}{
		{`data->>'l_orderkey'::BigInt`, "l_orderkey", expr.TBigInt},
		{`data->>'l_extendedprice'::Decimal`, "l_extendedprice", expr.TFloat},
		{`data->>'o_comment'`, "o_comment", expr.TText},
		{`data->'user'->>'id'::BigInt`, "user.id", expr.TBigInt},
		{`x->'geo'->>'lat'::Float`, "geo.lat", expr.TFloat},
		{`data->'user'`, "user", expr.TJSON},
		{`data->'a'->'b'->'c'`, "a.b.c", expr.TJSON},
		{`data->'hashtags'->0->>'text'`, "hashtags[0]text", expr.TText},
		{`data->'tags'->2`, "tags[2]", expr.TJSON},
		{`data->>'d'::Date`, "d", expr.TTimestamp},
		{`data->>'ok'::Boolean`, "ok", expr.TBool},
		{`data ->> 'spaced' :: BigInt`, "spaced", expr.TBigInt},
		{`data->>'it''s'`, "it's", expr.TText},
	}
	for _, tt := range tests {
		a, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.in, err)
			continue
		}
		if a.PathEnc != tt.path {
			t.Errorf("Parse(%q) path = %q, want %q", tt.in, a.PathEnc, tt.path)
		}
		if a.Type != tt.typ {
			t.Errorf("Parse(%q) type = %v, want %v", tt.in, a.Type, tt.typ)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`data`,
		`->>'x'`,
		`data->>'x'::NotAType`,
		`data->'x'::BigInt`, // cast requires ->>
		`data->>'x`,
		`data->`,
		`data->>'x' extra`,
		`data->>'a'->>'b'`, // ->> must be last
		`123->>'x'`,
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse(`broken`)
}

func TestTypeFromName(t *testing.T) {
	ok := map[string]expr.SQLType{
		"BigInt": expr.TBigInt, "int": expr.TBigInt, "Integer": expr.TBigInt,
		"Float": expr.TFloat, "decimal": expr.TFloat, "NUMERIC": expr.TFloat,
		"Text": expr.TText, "varchar": expr.TText,
		"bool": expr.TBool,
		"Date": expr.TTimestamp, "timestamp": expr.TTimestamp,
	}
	for name, want := range ok {
		got, err := TypeFromName(name)
		if err != nil || got != want {
			t.Errorf("TypeFromName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := TypeFromName("blob"); err == nil {
		t.Error("unknown type accepted")
	}
}
