package jsonb

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/float16"
	"repro/internal/jsongen"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
)

func enc(t *testing.T, src string) Doc {
	t.Helper()
	v, err := jsontext.ParseString(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return NewDoc(Encode(v))
}

func TestScalarRoundTrip(t *testing.T) {
	srcs := []string{
		`null`, `true`, `false`,
		`0`, `7`, `8`, `-1`, `127`, `128`, `-128`, `-129`,
		`32767`, `32768`, `-32768`, `65536`, `2147483647`, `2147483648`,
		`9223372036854775807`, `-9223372036854775808`,
		`0.5`, `1.5`, `-2.25`, `3.141592653589793`, `1e300`, `-1e-300`,
		`""`, `"a"`, `"hello"`, `"1234567"`, `"12345678"`,
		`"é😀"`, `"line\nbreak"`,
	}
	for _, s := range srcs {
		want, _ := jsontext.ParseString(s)
		d := enc(t, s)
		got := d.Decode()
		if !got.Equal(want) {
			t.Errorf("round trip %s: got %#v", s, got)
		}
		if !Valid(d.Bytes()) {
			t.Errorf("Valid(%s) = false", s)
		}
	}
}

func TestSmallIntInHeader(t *testing.T) {
	for i := int64(0); i < 8; i++ {
		buf := Encode(jsonvalue.Int(i))
		if len(buf) != 1 {
			t.Errorf("Encode(%d) = %d bytes, want 1 (inline header)", i, len(buf))
		}
	}
	if buf := Encode(jsonvalue.Int(8)); len(buf) != 2 {
		t.Errorf("Encode(8) = %d bytes, want 2", len(buf))
	}
	if buf := Encode(jsonvalue.Int(-1)); len(buf) != 2 {
		t.Errorf("Encode(-1) = %d bytes, want 2", len(buf))
	}
}

func TestMinimalIntWidths(t *testing.T) {
	tests := []struct {
		v    int64
		size int // header + payload
	}{
		{127, 2}, {-128, 2},
		{128, 3}, {-129, 3}, {32767, 3},
		{32768, 4}, {1 << 23, 5}, {1 << 31, 6},
		{1 << 39, 7}, {1 << 40, 7}, {1 << 47, 8}, {1 << 48, 8},
		{math.MaxInt64, 9}, {math.MinInt64, 9},
	}
	for _, tt := range tests {
		buf := Encode(jsonvalue.Int(tt.v))
		if len(buf) != tt.size {
			t.Errorf("Encode(%d) = %d bytes, want %d", tt.v, len(buf), tt.size)
		}
		got, ok := NewDoc(buf).Int64()
		if !ok || got != tt.v {
			t.Errorf("decode(%d) = %d, ok=%v", tt.v, got, ok)
		}
	}
}

func TestFloatCompression(t *testing.T) {
	tests := []struct {
		f    float64
		size int
	}{
		{0, 3}, {1, 3}, {-2, 3}, {0.5, 3}, {65504, 3}, // binary16 exact
		{1.0 / 3.0 * 3e7, 9},       // needs full double (check below)
		{float64(float32(0.1)), 5}, // binary32 exact, binary16 not
		{3.141592653589793, 9},     // double only
		{6.1e-5, 9},                // decimal literal: not binary16/32 exact
	}
	for _, tt := range tests {
		buf := Encode(jsonvalue.Float(tt.f))
		got, ok := NewDoc(buf).Float64()
		if !ok || got != tt.f {
			t.Errorf("float %g decoded to %g", tt.f, got)
		}
		if tt.size == 9 {
			// Only assert losslessness for these; the exact width
			// depends on the value.
			continue
		}
		if len(buf) != tt.size {
			t.Errorf("Encode(%g) = %d bytes, want %d", tt.f, len(buf), tt.size)
		}
	}
}

func TestFloatLosslessProperty(t *testing.T) {
	f := func(bits uint64) bool {
		fv := math.Float64frombits(bits)
		if math.IsNaN(fv) || math.IsInf(fv, 0) {
			return true // not representable in JSON; skip
		}
		got, ok := NewDoc(Encode(jsonvalue.Float(fv))).Float64()
		return ok && got == fv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestObjectLookup(t *testing.T) {
	d := enc(t, `{"id":1, "create":"3/06", "text":"a", "user":{"id":9,"name":"bo"}, "geo":null}`)
	if d.Kind() != KindObject || d.Len() != 5 {
		t.Fatalf("kind=%v len=%d", d.Kind(), d.Len())
	}
	id, ok := d.Get("id")
	if !ok {
		t.Fatal("id missing")
	}
	if v, _ := id.Int64(); v != 1 {
		t.Errorf("id = %d", v)
	}
	uid, ok := d.GetPath("user", "id")
	if !ok {
		t.Fatal("user.id missing")
	}
	if v, _ := uid.Int64(); v != 9 {
		t.Errorf("user.id = %d", v)
	}
	if g, ok := d.Get("geo"); !ok || !g.IsNull() {
		t.Errorf("geo: ok=%v null=%v", ok, g.IsNull())
	}
	if _, ok := d.Get("missing"); ok {
		t.Error("missing key found")
	}
	if _, ok := d.Get("aaaa"); ok { // below first sorted key
		t.Error("aaaa found")
	}
	if _, ok := d.Get("zzzz"); ok { // above last sorted key
		t.Error("zzzz found")
	}
}

func TestObjectKeysSorted(t *testing.T) {
	d := enc(t, `{"z":1,"a":2,"m":{"q":1,"b":2}}`)
	keys := d.Keys()
	if !sort.StringsAreSorted(keys) {
		t.Errorf("keys not sorted: %v", keys)
	}
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "z" {
		t.Errorf("keys = %v", keys)
	}
	for _, k := range keys {
		if !d.HasKey(k) {
			t.Errorf("HasKey(%q) = false", k)
		}
	}
	if d.HasKey("nope") {
		t.Error("HasKey(nope) = true")
	}
}

func TestArrayIndex(t *testing.T) {
	d := enc(t, `[10, "x", null, [1,2], {"k":5}]`)
	if d.Kind() != KindArray || d.Len() != 5 {
		t.Fatalf("kind=%v len=%d", d.Kind(), d.Len())
	}
	e0, _ := d.Index(0)
	if v, _ := e0.Int64(); v != 10 {
		t.Errorf("a[0] = %d", v)
	}
	e3, _ := d.Index(3)
	if e3.Kind() != KindArray || e3.Len() != 2 {
		t.Errorf("a[3] = %v len %d", e3.Kind(), e3.Len())
	}
	e4, _ := d.Index(4)
	k, ok := e4.Get("k")
	if !ok {
		t.Fatal("a[4].k missing")
	}
	if v, _ := k.Int64(); v != 5 {
		t.Errorf("a[4].k = %d", v)
	}
	if _, ok := d.Index(5); ok {
		t.Error("out-of-range index succeeded")
	}
	if _, ok := d.Index(-1); ok {
		t.Error("negative index succeeded")
	}
}

func TestEachForwardIteration(t *testing.T) {
	d := enc(t, `{"b":1,"a":{"x":[1,2]},"c":"s"}`)
	var keys []string
	d.Each(func(k string, v Doc) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Errorf("iteration keys = %v", keys)
	}
	// Early stop.
	count := 0
	d.Each(func(k string, v Doc) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestNumericStringDetection(t *testing.T) {
	accepted := map[string]string{
		"0": "", "12": "", "-7": "", "3.50": "", "0.001": "",
		"-0.5": "", "19.99": "", "100.00": "", "999999999999999999": "",
	}
	rejected := []string{
		"", "007", "1e5", "12.", ".5", "-0", "-0.0",
		"1234567890123456789012", "abc", "1a", " 1", "1 ", "+1",
		"--1", "1.2.3", "0x10", "١٢", "-",
	}
	for s := range accepted {
		d := NewDoc(Encode(jsonvalue.String(s)))
		if !d.IsNumericString() {
			t.Errorf("%q not detected as numeric", s)
			continue
		}
		got, _ := d.String()
		if got != s {
			t.Errorf("numeric %q round-tripped to %q", s, got)
		}
	}
	for _, s := range rejected {
		d := NewDoc(Encode(jsonvalue.String(s)))
		if d.IsNumericString() {
			t.Errorf("%q incorrectly detected as numeric", s)
		}
		got, ok := d.String()
		if !ok || got != s {
			t.Errorf("string %q round-tripped to %q", s, got)
		}
	}
}

func TestNumericStringTypedAccess(t *testing.T) {
	d := NewDoc(Encode(jsonvalue.String("-123.45")))
	m, sc, ok := d.NumericString()
	if !ok || m != -12345 || sc != 2 {
		t.Errorf("NumericString = (%d, %d, %v)", m, sc, ok)
	}
	// Kind is still string: JSON semantics preserved.
	if d.Kind() != KindString {
		t.Errorf("kind = %v", d.Kind())
	}
}

func TestDecodeSortsKeys(t *testing.T) {
	d := enc(t, `{"z":1,"a":2}`)
	v := d.Decode()
	ms := v.Members()
	if ms[0].Key != "a" || ms[1].Key != "z" {
		t.Errorf("decoded member order: %v, %v", ms[0].Key, ms[1].Key)
	}
}

func TestJSONSerializeFromBinary(t *testing.T) {
	d := enc(t, `{"b":[1,2.5,"x"],"a":null}`)
	got := d.JSON()
	want := `{"a":null,"b":[1,2.5,"x"]}`
	if got != want {
		t.Errorf("JSON() = %s, want %s", got, want)
	}
}

func TestAsText(t *testing.T) {
	tests := []struct{ src, want string }{
		{`"abc"`, "abc"},
		{`42`, "42"},
		{`2.5`, "2.5"},
		{`true`, "true"},
		{`null`, ""},
		{`[1,2]`, "[1,2]"},
		{`{"a":1}`, `{"a":1}`},
	}
	for _, tt := range tests {
		if got := enc(t, tt.src).AsText(); got != tt.want {
			t.Errorf("AsText(%s) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestLargeObject(t *testing.T) {
	// More than 255 members forces a wider count encoding; long
	// strings force wider offsets.
	var members []jsonvalue.Member
	for i := 0; i < 300; i++ {
		members = append(members, jsonvalue.M(
			string(rune('a'+i%26))+string(rune('a'+(i/26)%26))+string(rune('a'+i%10)),
			jsonvalue.Int(int64(i))))
	}
	v := jsonvalue.Object(members...)
	d := NewDoc(Encode(v))
	if !Valid(d.Bytes()) {
		t.Fatal("large object invalid")
	}
	if !d.Decode().Equal(v) {
		t.Fatal("large object round trip failed")
	}
}

func TestLargeArrayWideOffsets(t *testing.T) {
	var elems []jsonvalue.Value
	long := jsonvalue.String(string(make([]byte, 300)))
	for i := 0; i < 300; i++ {
		elems = append(elems, long)
	}
	v := jsonvalue.Array(elems...)
	d := NewDoc(Encode(v))
	if !Valid(d.Bytes()) {
		t.Fatal("invalid")
	}
	e, ok := d.Index(299)
	if !ok {
		t.Fatal("index 299 failed")
	}
	s, _ := e.String()
	if len(s) != 300 {
		t.Errorf("len = %d", len(s))
	}
}

func TestValidRejectsCorrupt(t *testing.T) {
	good := Encode(mustParseV(t, `{"a":[1,2],"b":"xy"}`))
	if !Valid(good) {
		t.Fatal("good buffer invalid")
	}
	// Truncations must never validate.
	for i := 0; i < len(good); i++ {
		if Valid(good[:i]) {
			t.Errorf("truncation at %d validated", i)
		}
	}
	// Flip type tags.
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xF0
		// Mutations may still be valid JSONB by chance only if the
		// size works out; never panic is the real property here.
		Valid(bad)
	}
}

func TestEncoderReuse(t *testing.T) {
	var e Encoder
	v1 := mustParseV(t, `{"a":1,"b":[1,2,3]}`)
	v2 := mustParseV(t, `{"z":"abc"}`)
	b1 := e.Encode(v1)
	b2 := e.Encode(v2)
	if !NewDoc(b1).Decode().Equal(v1) {
		t.Error("b1 corrupted after reuse")
	}
	if !NewDoc(b2).Decode().Equal(v2) {
		t.Error("b2 wrong")
	}
}

func mustParseV(t *testing.T, s string) jsonvalue.Value {
	t.Helper()
	v, err := jsontext.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// Property: for any generated document, encode→decode is identity
// modulo object key order, and the buffer validates.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	var e Encoder
	f := func(g jsongen.Gen) bool {
		buf := e.Encode(g.V)
		if !Valid(buf) {
			return false
		}
		return NewDoc(buf).Decode().Equal(g.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: binary-to-text serialization re-parses to the same value.
func TestQuickBinaryToTextRoundTrip(t *testing.T) {
	f := func(g jsongen.Gen) bool {
		d := NewDoc(Encode(g.V))
		v2, err := jsontext.ParseString(d.JSON())
		if err != nil {
			return false
		}
		return v2.Equal(g.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: every key Lookup-able in the value tree is Get-able in the
// binary form with an equal payload.
func TestQuickLookupAgreement(t *testing.T) {
	f := func(g jsongen.Gen) bool {
		if g.V.Kind() != jsonvalue.KindObject {
			return true
		}
		d := NewDoc(Encode(g.V))
		for _, m := range g.V.Members() {
			want, _ := g.V.Lookup(m.Key) // duplicate keys: last wins
			got, ok := d.Get(m.Key)
			if !ok || !got.Decode().Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestHalfFloatTable(t *testing.T) {
	cases := []float64{0, -0.0, 1, -1, 0.5, 2, 65504, -65504, 0.0009765625,
		5.960464477539063e-08, // smallest positive subnormal half
	}
	for _, f := range cases {
		h, ok := float16.FromFloat64(f)
		if !ok {
			t.Errorf("%g should be half-exact", f)
			continue
		}
		if back := float16.ToFloat64(h); back != f {
			t.Errorf("half(%g) -> %g", f, back)
		}
	}
	inexact := []float64{0.1, 65505, 1e5, math.Pi, 1e-8}
	for _, f := range inexact {
		if _, ok := float16.FromFloat64(f); ok {
			t.Errorf("%g should not be half-exact", f)
		}
	}
}

func TestNegativeZeroFloat(t *testing.T) {
	nz := math.Copysign(0, -1)
	got, ok := NewDoc(Encode(jsonvalue.Float(nz))).Float64()
	if !ok || math.Signbit(got) != true || got != 0 {
		t.Errorf("negative zero decoded to %g (signbit %v)", got, math.Signbit(got))
	}
}
