package jsonb

import (
	"bytes"
	"encoding/binary"
	"sort"

	"repro/internal/jsontape"
)

// Tape-driven JSONB encoding: the same two-pass algorithm as Encode,
// but walking a jsontape.Doc instead of a jsonvalue tree, so the
// ingest pipeline encodes documents without materializing them. The
// output is byte-identical to Encode(node.Materialize()) — object
// members are visited in the same stable key-sorted order, strings
// are decoded with the same escape/sanitize rules (once, during the
// measure pass), and numeric-string detection runs on the decoded
// bytes.

// tapeMember pairs a decoded object key (possibly aliasing the
// document's raw bytes) with the tape index of its value.
type tapeMember struct {
	key []byte
	val int
}

// EncodeTape returns the JSONB encoding of the document. The returned
// buffer is freshly allocated and owned by the caller.
func (e *Encoder) EncodeTape(d *jsontape.Doc) []byte {
	e.sizes = e.sizes[:0]
	e.spans = e.spans[:0]
	e.numeric = e.numeric[:0]
	e.tstr = e.tstr[:0]
	e.tmem = e.tmem[:0]
	total := e.measureTape(d, 0)
	if cap(e.buf) < total {
		e.buf = make([]byte, total)
	}
	e.buf = e.buf[:0]
	e.cursor = 0
	e.writeTape(d, 0)
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	return out
}

// measureTape mirrors measure: pre-order size records in the order
// the write pass will consume them, with objects traversed in sorted
// key order.
func (e *Encoder) measureTape(d *jsontape.Doc, ti int) int {
	idx := len(e.sizes)
	e.sizes = append(e.sizes, 0)
	e.spans = append(e.spans, 1)
	e.numeric = append(e.numeric, numericInfo{})
	e.tstr = append(e.tstr, nil)
	e.tmem = append(e.tmem, nil)

	n := d.At(ti)
	var size int
	switch n.Kind() {
	case jsontape.KNull, jsontape.KTrue, jsontape.KFalse:
		size = 1
	case jsontape.KInt:
		i := n.IntVal()
		if i >= 0 && i < 8 {
			size = 1
		} else {
			size = 1 + intWidth(i)
		}
	case jsontape.KFloat, jsontape.KFloatPre:
		size = 1 + floatWidth(n.FloatVal())
	case jsontape.KString, jsontape.KStringEsc:
		s := n.ContentBytes()
		e.tstr[idx] = s
		if m, sc, ok := detectNumeric(s); ok {
			e.numeric[idx] = numericInfo{mantissa: m, scale: sc, ok: true}
			if m >= 0 && m < 8 {
				size = 1 + 1 // header with inline mantissa + scale byte
			} else {
				size = 1 + intWidth(m) + 1
			}
		} else {
			ln := len(s)
			if ln < 8 {
				size = 1 + ln
			} else {
				size = 1 + intWidth(int64(ln)) + ln
			}
		}
	case jsontape.KArr:
		count := n.Count()
		slots := 0
		j := ti + 1
		for k := 0; k < count; k++ {
			slots += e.measureTape(d, j)
			j = d.Skip(j)
		}
		cw := widthForCode[codeForWidth(uint64(count))]
		ow := widthForCode[codeForWidth(uint64(slots))]
		size = 1 + cw + count*ow + slots
	case jsontape.KObj:
		count := n.Count()
		ms := make([]tapeMember, 0, count)
		j := ti + 1
		for k := 0; k < count; k++ {
			ms = append(ms, tapeMember{key: d.At(j).ContentBytes(), val: j + 1})
			j = d.Skip(j + 1)
		}
		presorted := true
		for k := 1; k < len(ms); k++ {
			if bytes.Compare(ms[k-1].key, ms[k].key) > 0 {
				presorted = false
				break
			}
		}
		if !presorted {
			sort.SliceStable(ms, func(a, b int) bool {
				return bytes.Compare(ms[a].key, ms[b].key) < 0
			})
		}
		e.tmem[idx] = ms
		slots := 0
		for _, m := range ms {
			slots += e.measureTape(d, m.val)
			slots += uvarintLen(uint64(len(m.key))) + len(m.key)
		}
		cw := widthForCode[codeForWidth(uint64(count))]
		ow := widthForCode[codeForWidth(uint64(slots))]
		size = 1 + cw + count*ow + slots
	}
	e.sizes[idx] = size
	e.spans[idx] = len(e.sizes) - idx
	return size
}

// writeTape mirrors write, consuming the memoized records in the same
// order measureTape appended them.
func (e *Encoder) writeTape(d *jsontape.Doc, ti int) {
	idx := e.cursor
	e.cursor++
	n := d.At(ti)
	switch n.Kind() {
	case jsontape.KNull:
		e.buf = append(e.buf, tagNull<<4)
	case jsontape.KTrue:
		e.buf = append(e.buf, tagTrue<<4)
	case jsontape.KFalse:
		e.buf = append(e.buf, tagFalse<<4)
	case jsontape.KInt:
		e.writeInt(tagInt, n.IntVal())
	case jsontape.KFloat, jsontape.KFloatPre:
		e.writeFloat(n.FloatVal())
	case jsontape.KString, jsontape.KStringEsc:
		if ni := e.numeric[idx]; ni.ok {
			e.writeInt(tagNumStr, ni.mantissa)
			e.buf = append(e.buf, ni.scale)
		} else {
			s := e.tstr[idx]
			e.writeInt(tagString, int64(len(s)))
			e.buf = append(e.buf, s...)
		}
	case jsontape.KArr:
		count := n.Count()
		slots := e.childSlotsSize(idx, count, nil)
		e.writeContainerHeader(tagArray, count, slots)
		ow := widthForCode[codeForWidth(uint64(slots))]
		off := 0
		childIdx := e.cursor
		for i := 0; i < count; i++ {
			off += e.sizes[childIdx]
			childIdx += e.nodeSpan(childIdx)
			e.appendUint(uint64(off), ow)
		}
		j := ti + 1
		for k := 0; k < count; k++ {
			e.writeTape(d, j)
			j = d.Skip(j)
		}
	case jsontape.KObj:
		ms := e.tmem[idx]
		count := len(ms)
		slots := e.childSlotsSize(idx, count, nil)
		for _, m := range ms {
			slots += uvarintLen(uint64(len(m.key))) + len(m.key)
		}
		e.writeContainerHeader(tagObject, count, slots)
		ow := widthForCode[codeForWidth(uint64(slots))]
		off := 0
		childIdx := e.cursor
		for i := 0; i < count; i++ {
			off += e.sizes[childIdx] // offset = end of payload i
			childIdx += e.nodeSpan(childIdx)
			e.appendUint(uint64(off), ow)
			off += uvarintLen(uint64(len(ms[i].key))) + len(ms[i].key)
		}
		for _, m := range ms {
			e.writeTape(d, m.val)
			e.buf = binary.AppendUvarint(e.buf, uint64(len(m.key)))
			e.buf = append(e.buf, m.key...)
		}
	}
}
