package jsonb

import (
	"testing"

	"repro/internal/jsontext"
)

// FuzzParse drives the full ingestion pipeline with arbitrary bytes:
// parse → serialize → reparse must be a fixed point, and every parsed
// document must survive the binary JSON round trip. `go test` runs
// the seed corpus; `go test -fuzz=FuzzParse ./internal/jsonb` digs.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`{}`, `[]`, `null`, `0`, `-0.5e2`, `"str"`,
		`{"id":1,"user":{"id":3,"tags":["a","b"]},"geo":null}`,
		`[{"a":[[]]},2,"x"]`,
		`{"n":"12.50","big":9223372036854775807}`,
		"{\"u\":\"\\u00e9\\ud83d\\ude00\"}",
		`{"dup":1,"dup":2}`,
		"[1,2",
		`{"a":`,
		"\"\\ud800\"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := jsontext.Parse(data)
		if err != nil {
			return // malformed input: rejection is the correct outcome
		}
		// Text round trip.
		out := jsontext.Serialize(v)
		v2, err := jsontext.Parse(out)
		if err != nil {
			t.Fatalf("serialized output unparseable: %q from %q", out, data)
		}
		if !v2.Equal(v) {
			t.Fatalf("text round trip changed value: %q", data)
		}
		// Binary round trip.
		buf := Encode(v)
		if !Valid(buf) {
			t.Fatalf("encoder produced invalid JSONB for %q", data)
		}
		if !NewDoc(buf).Decode().Equal(v) {
			t.Fatalf("binary round trip changed value: %q", data)
		}
	})
}
