// Package jsonb implements the paper's optimized binary JSON format
// (§5). Design goals, as stated there: O(log n) key lookup in objects,
// O(1) array indexing, typed values, forward-iterable contiguous
// storage (nested values live inside their parent's payload, so a
// depth-first walk never jumps backwards), and RFC 8259 conformance.
//
// Layout. Every value starts with an 8-bit header: the top four bits
// are the type tag, the low four bits carry type-specific information.
//
//	Null / True / False   header only
//	Int                   inline values 0..7 in the header (paper:
//	                      "small values (< 2^3)"), otherwise the low
//	                      bits give the byte width (1..8) of the
//	                      sign-extended little-endian integer that
//	                      follows
//	Float                 low bits give the width: 2 (binary16),
//	                      4 (binary32) or 8 (binary64); narrower
//	                      encodings are used only when the conversion
//	                      from double is lossless (§5.1)
//	String                low bits encode the byte length like Int
//	                      (inline 0..7 or a 1..8-byte length), then the
//	                      UTF-8 bytes
//	NumericString         a string detected to hold a decimal numeral
//	                      (§5.2): mantissa encoded like Int, then one
//	                      scale byte (digits after the decimal point;
//	                      0 means integral form)
//	Object / Array        low bits pack two 2-bit width codes (count
//	                      width, offset width ∈ {1,2,4,8}); then the
//	                      element count, then one offset per element,
//	                      then the element slots
//
// Object slots follow Figure 6: each slot is the element payload
// followed by its key; offset[i] is the end of payload i relative to
// the start of the slot region, which is exactly where key i begins.
// Keys are length-prefixed (uvarint) and sorted, so binary search
// jumps to offset[mid] and reads the key directly — O(log n) lookups
// with no per-slot scan. Array slots have no keys, so offset[i] both
// ends payload i and starts payload i+1 — O(1) indexing.
package jsonb

import "fmt"

// Type tags (top four bits of the header byte).
const (
	tagNull    = 0x0
	tagFalse   = 0x1
	tagTrue    = 0x2
	tagInt     = 0x3
	tagFloat   = 0x4
	tagString  = 0x5
	tagNumStr  = 0x6
	tagObject  = 0x7
	tagArray   = 0x8
	tagInvalid = 0xF
)

// inlineFlag marks an Int or String header whose low three bits hold
// the value (or length) itself.
const inlineFlag = 0x8

// Kind is the logical type of an encoded value.
type Kind uint8

// Logical kinds exposed by the accessor API. NumericString is
// surfaced as KindString by default (it *is* a JSON string) but can be
// inspected via Doc.IsNumericString.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindObject
	KindArray
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindObject:
		return "object"
	case KindArray:
		return "array"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// widthCode maps a 2-bit code to a byte width and back.
var widthForCode = [4]int{1, 2, 4, 8}

func codeForWidth(n uint64) int {
	switch {
	case n <= 0xFF:
		return 0
	case n <= 0xFFFF:
		return 1
	case n <= 0xFFFFFFFF:
		return 2
	default:
		return 3
	}
}

// intWidth returns the minimal number of bytes (1..8) needed to store
// v as a sign-extended little-endian integer.
func intWidth(v int64) int {
	for w := 1; w < 8; w++ {
		shift := uint(8 * w)
		// Sign-extend the low w bytes and compare.
		if int64(v<<(64-shift))>>(64-shift) == v {
			return w
		}
	}
	return 8
}

func putIntLE(dst []byte, v int64, w int) {
	for i := 0; i < w; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}

func getIntLE(src []byte, w int) int64 {
	var u uint64
	for i := 0; i < w; i++ {
		u |= uint64(src[i]) << (8 * i)
	}
	shift := uint(64 - 8*w)
	return int64(u<<shift) >> shift
}

func putUintLE(dst []byte, v uint64, w int) {
	for i := 0; i < w; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}

func getUintLE(src []byte, w int) uint64 {
	var u uint64
	for i := 0; i < w; i++ {
		u |= uint64(src[i]) << (8 * i)
	}
	return u
}

// FormatError reports a malformed JSONB buffer.
type FormatError struct{ Msg string }

func (e *FormatError) Error() string { return "jsonb: " + e.Msg }

func errf(format string, args ...any) error {
	return &FormatError{Msg: fmt.Sprintf(format, args...)}
}
