package jsonb

import (
	"bytes"
	"testing"

	"repro/internal/jsontape"
	"repro/internal/jsontext"
)

var tapeEncodeDocs = []string{
	`null`, `true`, `false`, `0`, `7`, `8`, `-1`, `123456789012`,
	`2.5`, `-0.5e2`, `1e308`, `1e-999`, `3.14159265358979`,
	`""`, `"short"`, `"a longer string that exceeds the inline bound"`,
	`"12.50"`, `"-42"`, `"007"`, `"-0"`, `"9223372036854775807"`,
	`"é😀"`, `"tab\there"`,
	`{}`, `[]`, `[null,true,1,2.5,"x",[],{}]`,
	`{"b":1,"a":2}`, `{"a":1,"b":2}`, `{"dup":1,"dup":2}`,
	`{"outer":{"z":[1,{"y":"str"}],"a":{"deep":null}},"n":"12.50"}`,
	`{"id":1,"user":{"id":3,"tags":["a","b"]},"geo":null}`,
	`[{"a":[[]]},2,"x"]`,
	`{"k1":"v","k2":[1,2,3,4,5,6,7,8,9],"k3":{"s":"😀"},"":0}`,
}

// TestEncodeTapeMatchesEncode locks the tape encoder to the tree
// encoder byte for byte.
func TestEncodeTapeMatchesEncode(t *testing.T) {
	var e Encoder
	for _, src := range tapeEncodeDocs {
		v, err := jsontext.Parse([]byte(src))
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		var d jsontape.Doc
		if err := jsontape.Parse([]byte(src), &d); err != nil {
			t.Fatalf("tape parse %q: %v", src, err)
		}
		want := Encode(v)
		got := e.EncodeTape(&d)
		if !bytes.Equal(got, want) {
			t.Errorf("%q: tape encoding differs\n got=%x\nwant=%x", src, got, want)
		}
		if !Valid(got) {
			t.Errorf("%q: tape encoding invalid", src)
		}
		if !NewDoc(got).Decode().Equal(v) {
			t.Errorf("%q: tape encoding does not round trip", src)
		}
	}
}

// TestEncodeTapeReuse checks encoder scratch state resets across
// documents of different shapes.
func TestEncodeTapeReuse(t *testing.T) {
	var e Encoder
	for i := 0; i < 3; i++ {
		for _, src := range tapeEncodeDocs {
			var d jsontape.Doc
			if err := jsontape.Parse([]byte(src), &d); err != nil {
				t.Fatal(err)
			}
			v, _ := jsontext.Parse([]byte(src))
			if !bytes.Equal(e.EncodeTape(&d), Encode(v)) {
				t.Fatalf("round %d: %q differs after reuse", i, src)
			}
		}
	}
}
