package jsonb

import "strconv"

// Numeric-string detection (§5.2). Strings whose entire content is a
// decimal numeral are stored typed so that the common cast to a
// numeric SQL type skips string parsing, while the exact original
// text can always be reconstructed from (mantissa, scale).
//
// The detector is deliberately conservative: the reconstruction must
// be byte-exact, so forms whose text is not uniquely determined by
// (mantissa, scale) are rejected — leading zeros ("007"), a negative
// zero integer part with zero mantissa ("-0"), exponents, and
// numerals longer than 18 digits (mantissa must fit int64 with room
// for the sign).

// detectNumeric parses s as a decimal numeral. ok is false when s is
// not representable. scale is the number of digits after the decimal
// point; scale 0 means the integral form (no point). Generic over
// string and []byte so the tape encoder can run it on decoded content
// without allocating.
func detectNumeric[S ~string | ~[]byte](s S) (mantissa int64, scale uint8, ok bool) {
	if len(s) == 0 || len(s) > 20 {
		return 0, 0, false
	}
	i := 0
	neg := false
	if s[0] == '-' {
		neg = true
		i++
		if i == len(s) {
			return 0, 0, false
		}
	}
	// Integer part: "0" or nonzero-leading digit run.
	intStart := i
	if s[i] == '0' {
		i++
		if i < len(s) && s[i] != '.' {
			return 0, 0, false // leading zero
		}
	} else {
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
		if i == intStart {
			return 0, 0, false // no digits
		}
	}
	fracDigits := 0
	if i < len(s) {
		if s[i] != '.' {
			return 0, 0, false
		}
		i++
		fracStart := i
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
		fracDigits = i - fracStart
		if fracDigits == 0 || i != len(s) {
			return 0, 0, false // "1." or trailing junk
		}
	}
	totalDigits := len(s) - intStart
	if fracDigits > 0 {
		totalDigits-- // the point
	}
	if totalDigits > 18 || fracDigits > 18 {
		return 0, 0, false
	}
	var m int64
	for j := intStart; j < len(s); j++ {
		c := s[j]
		if c == '.' {
			continue
		}
		m = m*10 + int64(c-'0')
	}
	if neg {
		if m == 0 {
			return 0, 0, false // "-0", "-0.0": sign unrecoverable
		}
		m = -m
	}
	return m, uint8(fracDigits), true
}

// formatNumeric reconstructs the exact original text of a detected
// numeric string.
func formatNumeric(mantissa int64, scale uint8) string {
	if scale == 0 {
		return strconv.FormatInt(mantissa, 10)
	}
	neg := mantissa < 0
	if neg {
		mantissa = -mantissa
	}
	digits := strconv.FormatInt(mantissa, 10)
	for len(digits) <= int(scale) {
		digits = "0" + digits
	}
	point := len(digits) - int(scale)
	out := digits[:point] + "." + digits[point:]
	if neg {
		out = "-" + out
	}
	return out
}
