package jsonb

import (
	"encoding/binary"
	"math"
	"sort"
	"strconv"

	"repro/internal/float16"
	"repro/internal/jsonvalue"
)

// Doc is a cursor into an encoded JSONB buffer. It never copies
// payload bytes: Get and Index return sub-cursors into the same
// buffer, so point accesses touch only the bytes on the lookup path
// (§5.4).
type Doc struct {
	buf []byte
}

// NewDoc wraps an encoded buffer. The buffer is not validated here;
// use Valid for untrusted input.
func NewDoc(buf []byte) Doc { return Doc{buf: buf} }

// Bytes returns the encoded bytes of this value, trimmed to its exact
// size (the cursor may view a suffix of a parent buffer).
func (d Doc) Bytes() []byte {
	n, _ := d.size()
	return d.buf[:n]
}

// Kind reports the logical type of the value under the cursor.
func (d Doc) Kind() Kind {
	if len(d.buf) == 0 {
		return KindNull
	}
	switch d.buf[0] >> 4 {
	case tagNull:
		return KindNull
	case tagFalse, tagTrue:
		return KindBool
	case tagInt:
		return KindInt
	case tagFloat:
		return KindFloat
	case tagString, tagNumStr:
		return KindString
	case tagObject:
		return KindObject
	case tagArray:
		return KindArray
	}
	return KindNull
}

// IsNull reports whether the value is JSON null.
func (d Doc) IsNull() bool { return len(d.buf) == 0 || d.buf[0]>>4 == tagNull }

// IsNumericString reports whether the value is a string stored in the
// typed numeric-string representation (§5.2).
func (d Doc) IsNumericString() bool { return len(d.buf) > 0 && d.buf[0]>>4 == tagNumStr }

// Bool returns the boolean payload.
func (d Doc) Bool() (bool, bool) {
	if len(d.buf) == 0 {
		return false, false
	}
	switch d.buf[0] >> 4 {
	case tagTrue:
		return true, true
	case tagFalse:
		return false, true
	}
	return false, false
}

// Int64 returns the integer payload of an Int value.
func (d Doc) Int64() (int64, bool) {
	if len(d.buf) == 0 || d.buf[0]>>4 != tagInt {
		return 0, false
	}
	return d.readIntNibble(), true
}

// readIntNibble decodes the int-style low nibble at d.buf[0].
func (d Doc) readIntNibble() int64 {
	nib := d.buf[0] & 0xF
	if nib&inlineFlag != 0 {
		return int64(nib & 0x7)
	}
	w := int(nib) + 1
	return getIntLE(d.buf[1:], w)
}

func intNibbleSize(b []byte) int {
	nib := b[0] & 0xF
	if nib&inlineFlag != 0 {
		return 1
	}
	return 1 + int(nib) + 1
}

// Float64 returns the float payload of a Float value.
func (d Doc) Float64() (float64, bool) {
	if len(d.buf) == 0 || d.buf[0]>>4 != tagFloat {
		return 0, false
	}
	switch d.buf[0] & 0xF {
	case 2:
		return float16.ToFloat64(uint16(d.buf[1]) | uint16(d.buf[2])<<8), true
	case 4:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(d.buf[1:]))), true
	default:
		return math.Float64frombits(binary.LittleEndian.Uint64(d.buf[1:])), true
	}
}

// String returns the string payload, reconstructing the exact text of
// numeric strings.
func (d Doc) String() (string, bool) {
	if len(d.buf) == 0 {
		return "", false
	}
	switch d.buf[0] >> 4 {
	case tagString:
		n := int(d.readIntNibble())
		start := intNibbleSize(d.buf)
		return string(d.buf[start : start+n]), true
	case tagNumStr:
		m := d.readIntNibble()
		scale := d.buf[intNibbleSize(d.buf)]
		return formatNumeric(m, scale), true
	}
	return "", false
}

// NumericString returns the typed (mantissa, scale) payload of a
// numeric string, letting casts skip text parsing entirely.
func (d Doc) NumericString() (mantissa int64, scale uint8, ok bool) {
	if len(d.buf) == 0 || d.buf[0]>>4 != tagNumStr {
		return 0, 0, false
	}
	return d.readIntNibble(), d.buf[intNibbleSize(d.buf)], true
}

// container decodes the count/offset region of an object or array.
type container struct {
	n        int // element count
	ow       int // offset width in bytes
	offStart int // byte offset of the offset array
	slotBase int // byte offset of the slot region
}

func (d Doc) container() (container, bool) {
	if len(d.buf) == 0 {
		return container{}, false
	}
	tag := d.buf[0] >> 4
	if tag != tagObject && tag != tagArray {
		return container{}, false
	}
	cw := widthForCode[(d.buf[0]>>2)&0x3]
	ow := widthForCode[d.buf[0]&0x3]
	if len(d.buf) < 1+cw {
		return container{}, false
	}
	n64 := getUintLE(d.buf[1:], cw)
	// Every element needs at least one offset byte, so a count larger
	// than the buffer is unconditionally corrupt (and would overflow
	// the arithmetic below).
	if n64 > uint64(len(d.buf)) {
		return container{}, false
	}
	n := int(n64)
	offStart := 1 + cw
	slotBase := offStart + n*ow
	if slotBase > len(d.buf) {
		return container{}, false
	}
	return container{n: n, ow: ow, offStart: offStart, slotBase: slotBase}, true
}

// offset returns the i-th offset, or -1 when it lies outside the
// buffer (corrupt input).
func (d Doc) offset(c container, i int) int {
	pos := c.offStart + i*c.ow
	if pos+c.ow > len(d.buf) {
		return -1
	}
	v := getUintLE(d.buf[pos:], c.ow)
	if v > uint64(len(d.buf)) {
		return -1
	}
	return int(v)
}

// Len returns the element count of an object or array (0 otherwise).
func (d Doc) Len() int {
	c, ok := d.container()
	if !ok {
		return 0
	}
	return c.n
}

// keyAt returns the key of object slot i. Offsets point at the end of
// payload i, which is exactly where the length-prefixed key begins.
func (d Doc) keyAt(c container, i int) string {
	pos := c.slotBase + d.offset(c, i)
	klen, n := binary.Uvarint(d.buf[pos:])
	pos += n
	return string(d.buf[pos : pos+int(klen)])
}

// payloadAt returns a cursor to the payload of slot i. For objects,
// payload i starts where key i-1 ends; for arrays it starts at the end
// of payload i-1.
func (d Doc) payloadAt(c container, i int, isObject bool) Doc {
	var start int
	if i == 0 {
		start = c.slotBase
	} else if isObject {
		pos := c.slotBase + d.offset(c, i-1)
		klen, n := binary.Uvarint(d.buf[pos:])
		start = pos + n + int(klen)
	} else {
		start = c.slotBase + d.offset(c, i-1)
	}
	return Doc{buf: d.buf[start:]}
}

// Get looks up key in an object using binary search over the sorted
// keys — the O(log n) access the format is designed for. The second
// result is false when d is not an object or the key is absent.
func (d Doc) Get(key string) (Doc, bool) {
	c, ok := d.container()
	if !ok || d.buf[0]>>4 != tagObject {
		return Doc{}, false
	}
	lo, hi := 0, c.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		k := d.keyAt(c, mid)
		switch {
		case k < key:
			lo = mid + 1
		case k > key:
			hi = mid
		default:
			return d.payloadAt(c, mid, true), true
		}
	}
	return Doc{}, false
}

// GetPath follows a chain of object keys, failing fast on the first
// missing segment.
func (d Doc) GetPath(keys ...string) (Doc, bool) {
	cur := d
	for _, k := range keys {
		var ok bool
		cur, ok = cur.Get(k)
		if !ok {
			return Doc{}, false
		}
	}
	return cur, true
}

// Index returns the i-th array element in O(1).
func (d Doc) Index(i int) (Doc, bool) {
	c, ok := d.container()
	if !ok || d.buf[0]>>4 != tagArray || i < 0 || i >= c.n {
		return Doc{}, false
	}
	return d.payloadAt(c, i, false), true
}

// Each iterates members of an object or elements of an array in
// storage order (sorted keys for objects). The iteration is a pure
// forward walk over contiguous memory. key is "" for arrays.
func (d Doc) Each(fn func(key string, v Doc) bool) {
	c, ok := d.container()
	if !ok {
		return
	}
	isObject := d.buf[0]>>4 == tagObject
	pos := c.slotBase
	for i := 0; i < c.n; i++ {
		payload := Doc{buf: d.buf[pos:]}
		psize, _ := payload.size()
		var key string
		pos += psize
		if isObject {
			klen, n := binary.Uvarint(d.buf[pos:])
			key = string(d.buf[pos+n : pos+n+int(klen)])
			pos += n + int(klen)
		}
		if !fn(key, payload) {
			return
		}
	}
}

// size computes the full encoded size of the value under the cursor.
// Containers resolve it from their last offset in O(1); scalars from
// the header.
func (d Doc) size() (int, error) {
	if len(d.buf) == 0 {
		return 0, errf("empty buffer")
	}
	switch d.buf[0] >> 4 {
	case tagNull, tagFalse, tagTrue:
		return 1, nil
	case tagInt, tagString, tagNumStr:
		base := intNibbleSize(d.buf)
		if base > len(d.buf) {
			return 0, errf("truncated header")
		}
		switch d.buf[0] >> 4 {
		case tagInt:
			return base, nil
		case tagNumStr:
			return base + 1, nil // scale byte
		default:
			slen := Doc{buf: d.buf}.readIntNibble()
			if slen < 0 || slen > int64(len(d.buf)) {
				return 0, errf("bad string length")
			}
			return base + int(slen), nil
		}
	case tagFloat:
		w := int(d.buf[0] & 0xF)
		if w != 2 && w != 4 && w != 8 {
			return 0, errf("bad float width %d", w)
		}
		return 1 + w, nil
	case tagObject, tagArray:
		c, ok := d.container()
		if !ok {
			return 0, errf("bad container header")
		}
		if c.n == 0 {
			return c.slotBase, nil
		}
		last := d.offset(c, c.n-1)
		if last < 0 {
			return 0, errf("bad container offset")
		}
		end := c.slotBase + last
		if d.buf[0]>>4 == tagObject {
			if end >= len(d.buf) {
				return 0, errf("key offset out of range")
			}
			klen, n := binary.Uvarint(d.buf[end:])
			if n <= 0 || klen > uint64(len(d.buf)) {
				return 0, errf("bad key length")
			}
			end += n + int(klen)
		}
		return end, nil
	}
	return 0, errf("invalid type tag 0x%x", d.buf[0]>>4)
}

// Decode materializes the full value tree. Object members come out in
// sorted-key order (the format does not preserve input key order,
// matching the paper's PostgreSQL-style trade-off).
func (d Doc) Decode() jsonvalue.Value {
	switch d.Kind() {
	case KindNull:
		return jsonvalue.Null()
	case KindBool:
		b, _ := d.Bool()
		return jsonvalue.Bool(b)
	case KindInt:
		i, _ := d.Int64()
		return jsonvalue.Int(i)
	case KindFloat:
		f, _ := d.Float64()
		return jsonvalue.Float(f)
	case KindString:
		s, _ := d.String()
		return jsonvalue.String(s)
	case KindArray:
		elems := make([]jsonvalue.Value, 0, d.Len())
		d.Each(func(_ string, v Doc) bool {
			elems = append(elems, v.Decode())
			return true
		})
		return jsonvalue.Array(elems...)
	case KindObject:
		members := make([]jsonvalue.Member, 0, d.Len())
		d.Each(func(k string, v Doc) bool {
			members = append(members, jsonvalue.Member{Key: k, Value: v.Decode()})
			return true
		})
		return jsonvalue.Object(members...)
	}
	return jsonvalue.Null()
}

// AsText renders the value the way the ->> operator does: strings
// unquoted, scalars in their JSON text form, containers as JSON text.
func (d Doc) AsText() string {
	switch d.Kind() {
	case KindNull:
		return ""
	case KindBool:
		b, _ := d.Bool()
		if b {
			return "true"
		}
		return "false"
	case KindInt:
		i, _ := d.Int64()
		return strconv.FormatInt(i, 10)
	case KindFloat:
		f, _ := d.Float64()
		return strconv.FormatFloat(f, 'g', -1, 64)
	case KindString:
		s, _ := d.String()
		return s
	default:
		return jsonvalueText(d)
	}
}

// Valid walks the whole buffer and reports whether it is a
// well-formed JSONB value occupying exactly len(buf) bytes.
func Valid(buf []byte) bool {
	d := Doc{buf: buf}
	n, err := d.validate(0)
	return err == nil && n == len(buf)
}

func (d Doc) validate(depth int) (int, error) {
	if depth > 512 {
		return 0, errf("nesting too deep")
	}
	if len(d.buf) == 0 {
		return 0, errf("empty buffer")
	}
	sz, err := d.size()
	if err != nil {
		return 0, err
	}
	if sz > len(d.buf) {
		return 0, errf("value overruns buffer")
	}
	tag := d.buf[0] >> 4
	if tag == tagObject || tag == tagArray {
		c, _ := d.container()
		pos := c.slotBase
		prevKey := ""
		for i := 0; i < c.n; i++ {
			if pos >= len(d.buf) {
				return 0, errf("slot %d out of range", i)
			}
			child := Doc{buf: d.buf[pos:]}
			csz, err := child.validate(depth + 1)
			if err != nil {
				return 0, err
			}
			pos += csz
			if tag == tagObject {
				klen, n := binary.Uvarint(d.buf[pos:])
				if n <= 0 || pos+n+int(klen) > len(d.buf) {
					return 0, errf("bad key in slot %d", i)
				}
				key := string(d.buf[pos+n : pos+n+int(klen)])
				if i > 0 && key < prevKey {
					return 0, errf("object keys not sorted")
				}
				prevKey = key
				pos += n + int(klen)
			}
			if want := c.slotBase + d.offset(c, i); tag == tagArray && pos != want {
				return 0, errf("array offset %d mismatch", i)
			}
		}
		if pos != sz {
			return 0, errf("container size mismatch")
		}
	}
	return sz, nil
}

// Keys returns the sorted keys of an object (nil otherwise).
func (d Doc) Keys() []string {
	c, ok := d.container()
	if !ok || d.buf[0]>>4 != tagObject {
		return nil
	}
	keys := make([]string, c.n)
	for i := range keys {
		keys[i] = d.keyAt(c, i)
	}
	return keys
}

// HasKey reports key presence without extracting the payload.
func (d Doc) HasKey(key string) bool {
	c, ok := d.container()
	if !ok || d.buf[0]>>4 != tagObject {
		return false
	}
	i := sort.Search(c.n, func(i int) bool { return d.keyAt(c, i) >= key })
	return i < c.n && d.keyAt(c, i) == key
}
