package jsonb

import (
	"encoding/binary"
	"math"

	"repro/internal/float16"
	"repro/internal/jsonvalue"
)

// Encoder transforms jsonvalue documents into JSONB buffers using the
// two-pass algorithm of §5.3: the first pass walks the tree depth
// first and records the encoded size of every node, the second pass
// writes into an exactly-sized buffer with no resizing. An Encoder is
// reusable (its scratch state is reset per document) but not safe for
// concurrent use; loading pipelines use one Encoder per worker.
type Encoder struct {
	sizes   []int                // full encoded size per node, pre-order
	spans   []int                // number of pre-order records per subtree
	sorted  [][]jsonvalue.Member // sorted members per node (objects only)
	numeric []numericInfo        // numeric-string detection per node (strings only)
	cursor  int                  // node cursor for the write pass
	buf     []byte
	// Tape-driven encoding scratch (EncodeTape): decoded string
	// content and sorted members per pre-order record.
	tstr [][]byte
	tmem [][]tapeMember
}

type numericInfo struct {
	mantissa int64
	scale    uint8
	ok       bool
}

// Encode returns the JSONB encoding of v. The returned buffer is
// freshly allocated and owned by the caller.
func (e *Encoder) Encode(v jsonvalue.Value) []byte {
	e.sizes = e.sizes[:0]
	e.spans = e.spans[:0]
	e.sorted = e.sorted[:0]
	e.numeric = e.numeric[:0]
	total := e.measure(v)
	if cap(e.buf) < total {
		e.buf = make([]byte, total)
	}
	e.buf = e.buf[:0]
	e.cursor = 0
	e.write(v)
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	return out
}

// Encode is a convenience wrapper for one-off encoding.
func Encode(v jsonvalue.Value) []byte {
	var e Encoder
	return e.Encode(v)
}

// measure is the first pass: it computes and memoizes the full
// encoded size (header included) of v and all descendants, appending
// per-node records in pre-order so the write pass can consume them in
// the same order.
func (e *Encoder) measure(v jsonvalue.Value) int {
	idx := len(e.sizes)
	e.sizes = append(e.sizes, 0)
	e.spans = append(e.spans, 1)
	e.sorted = append(e.sorted, nil)
	e.numeric = append(e.numeric, numericInfo{})

	var size int
	switch v.Kind() {
	case jsonvalue.KindNull, jsonvalue.KindBool:
		size = 1
	case jsonvalue.KindInt:
		i := v.IntVal()
		if i >= 0 && i < 8 {
			size = 1
		} else {
			size = 1 + intWidth(i)
		}
	case jsonvalue.KindFloat:
		size = 1 + floatWidth(v.FloatVal())
	case jsonvalue.KindString:
		s := v.StringVal()
		if m, sc, ok := detectNumeric(s); ok {
			e.numeric[idx] = numericInfo{mantissa: m, scale: sc, ok: true}
			if m >= 0 && m < 8 {
				size = 1 + 1 // header with inline mantissa + scale byte
			} else {
				size = 1 + intWidth(m) + 1
			}
		} else {
			n := len(s)
			if n < 8 {
				size = 1 + n
			} else {
				size = 1 + intWidth(int64(n)) + n
			}
		}
	case jsonvalue.KindArray:
		slots := 0
		for _, el := range v.Elems() {
			slots += e.measure(el)
		}
		n := uint64(v.Len())
		cw := widthForCode[codeForWidth(n)]
		ow := widthForCode[codeForWidth(uint64(slots))]
		size = 1 + cw + v.Len()*ow + slots
	case jsonvalue.KindObject:
		ms := v.SortedMembers()
		e.sorted[idx] = ms
		slots := 0
		for _, m := range ms {
			slots += e.measure(m.Value)
			slots += uvarintLen(uint64(len(m.Key))) + len(m.Key)
		}
		n := uint64(len(ms))
		cw := widthForCode[codeForWidth(n)]
		ow := widthForCode[codeForWidth(uint64(slots))]
		size = 1 + cw + len(ms)*ow + slots
	}
	e.sizes[idx] = size
	e.spans[idx] = len(e.sizes) - idx
	return size
}

// write is the second pass. It mirrors measure's traversal exactly;
// e.cursor advances through the memoized per-node records.
func (e *Encoder) write(v jsonvalue.Value) {
	idx := e.cursor
	e.cursor++
	switch v.Kind() {
	case jsonvalue.KindNull:
		e.buf = append(e.buf, tagNull<<4)
	case jsonvalue.KindBool:
		if v.BoolVal() {
			e.buf = append(e.buf, tagTrue<<4)
		} else {
			e.buf = append(e.buf, tagFalse<<4)
		}
	case jsonvalue.KindInt:
		e.writeInt(tagInt, v.IntVal())
	case jsonvalue.KindFloat:
		e.writeFloat(v.FloatVal())
	case jsonvalue.KindString:
		if ni := e.numeric[idx]; ni.ok {
			e.writeInt(tagNumStr, ni.mantissa)
			e.buf = append(e.buf, ni.scale)
		} else {
			s := v.StringVal()
			e.writeInt(tagString, int64(len(s)))
			e.buf = append(e.buf, s...)
		}
	case jsonvalue.KindArray:
		n := v.Len()
		slots := e.childSlotsSize(idx, n, nil)
		e.writeContainerHeader(tagArray, n, slots)
		// Offsets: cumulative payload ends.
		ow := widthForCode[codeForWidth(uint64(slots))]
		off := 0
		childIdx := e.cursor
		for i := 0; i < n; i++ {
			off += e.sizes[childIdx]
			childIdx += e.nodeSpan(childIdx)
			e.appendUint(uint64(off), ow)
		}
		for _, el := range v.Elems() {
			e.write(el)
		}
	case jsonvalue.KindObject:
		ms := e.sorted[idx]
		n := len(ms)
		slots := e.childSlotsSize(idx, n, ms)
		e.writeContainerHeader(tagObject, n, slots)
		ow := widthForCode[codeForWidth(uint64(slots))]
		off := 0
		childIdx := e.cursor
		for i := 0; i < n; i++ {
			off += e.sizes[childIdx] // offset = end of payload i
			childIdx += e.nodeSpan(childIdx)
			e.appendUint(uint64(off), ow)
			off += uvarintLen(uint64(len(ms[i].Key))) + len(ms[i].Key)
		}
		for _, m := range ms {
			e.write(m.Value)
			e.buf = binary.AppendUvarint(e.buf, uint64(len(m.Key)))
			e.buf = append(e.buf, m.Key...)
		}
	}
}

// nodeSpan returns how many pre-order node records the subtree rooted
// at record idx occupies, letting the write pass skip over a child's
// descendants when walking sibling records.
func (e *Encoder) nodeSpan(idx int) int { return e.spans[idx] }

// childSlotsSize sums the slot bytes of the n children whose records
// start right after idx (the current cursor position).
func (e *Encoder) childSlotsSize(idx, n int, ms []jsonvalue.Member) int {
	slots := 0
	childIdx := idx + 1
	for i := 0; i < n; i++ {
		slots += e.sizes[childIdx]
		childIdx += e.spans[childIdx]
	}
	if ms != nil {
		for _, m := range ms {
			slots += uvarintLen(uint64(len(m.Key))) + len(m.Key)
		}
	}
	return slots
}

func (e *Encoder) writeContainerHeader(tag byte, n, slots int) {
	cc := codeForWidth(uint64(n))
	oc := codeForWidth(uint64(slots))
	e.buf = append(e.buf, tag<<4|byte(cc<<2)|byte(oc))
	e.appendUint(uint64(n), widthForCode[cc])
}

func (e *Encoder) appendUint(v uint64, w int) {
	var tmp [8]byte
	putUintLE(tmp[:], v, w)
	e.buf = append(e.buf, tmp[:w]...)
}

// writeInt emits a header with the int-style low nibble followed by
// the minimal-width integer (shared by Int, String lengths, and
// NumericString mantissas).
func (e *Encoder) writeInt(tag byte, v int64) {
	if v >= 0 && v < 8 {
		e.buf = append(e.buf, tag<<4|inlineFlag|byte(v))
		return
	}
	w := intWidth(v)
	e.buf = append(e.buf, tag<<4|byte(w-1)) // width-1 fits 3 bits (0..7)
	var tmp [8]byte
	putIntLE(tmp[:], v, w)
	e.buf = append(e.buf, tmp[:w]...)
}

func (e *Encoder) writeFloat(f float64) {
	if h, ok := float16.FromFloat64(f); ok {
		e.buf = append(e.buf, tagFloat<<4|2, byte(h), byte(h>>8))
		return
	}
	if s, ok := float16.SingleFromFloat64(f); ok {
		e.buf = append(e.buf, tagFloat<<4|4)
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], s)
		e.buf = append(e.buf, tmp[:]...)
		return
	}
	e.buf = append(e.buf, tagFloat<<4|8)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
	e.buf = append(e.buf, tmp[:]...)
}

func floatWidth(f float64) int {
	if _, ok := float16.FromFloat64(f); ok {
		return 2
	}
	if _, ok := float16.SingleFromFloat64(f); ok {
		return 4
	}
	return 8
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
