package jsonb

import (
	"strconv"

	"repro/internal/jsontext"
)

// AppendJSON serializes the encoded value back to JSON text without
// materializing a value tree — a single forward walk over the buffer,
// exercising the contiguous-layout property the format is built for.
func (d Doc) AppendJSON(dst []byte) []byte {
	switch d.Kind() {
	case KindNull:
		return append(dst, "null"...)
	case KindBool:
		b, _ := d.Bool()
		if b {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case KindInt:
		i, _ := d.Int64()
		return strconv.AppendInt(dst, i, 10)
	case KindFloat:
		f, _ := d.Float64()
		return jsontext.AppendFloat(dst, f)
	case KindString:
		s, _ := d.String()
		return jsontext.AppendQuoted(dst, s)
	case KindArray:
		dst = append(dst, '[')
		first := true
		d.Each(func(_ string, v Doc) bool {
			if !first {
				dst = append(dst, ',')
			}
			first = false
			dst = v.AppendJSON(dst)
			return true
		})
		return append(dst, ']')
	case KindObject:
		dst = append(dst, '{')
		first := true
		d.Each(func(k string, v Doc) bool {
			if !first {
				dst = append(dst, ',')
			}
			first = false
			dst = jsontext.AppendQuoted(dst, k)
			dst = append(dst, ':')
			dst = v.AppendJSON(dst)
			return true
		})
		return append(dst, '}')
	}
	return dst
}

// JSON returns the value as JSON text.
func (d Doc) JSON() string { return string(d.AppendJSON(nil)) }

func jsonvalueText(d Doc) string { return d.JSON() }
