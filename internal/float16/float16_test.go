package float16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	exact := []float64{0, 1, -1, 0.5, 0.25, 2048, 65504, -65504,
		6.103515625e-05,        // smallest normal half
		5.960464477539063e-08,  // smallest subnormal half
		-5.960464477539063e-08, // negative subnormal
	}
	for _, f := range exact {
		h, ok := FromFloat64(f)
		if !ok {
			t.Errorf("%g should be half-exact", f)
			continue
		}
		if back := ToFloat64(h); back != f {
			t.Errorf("half(%g) round trips to %g", f, back)
		}
	}
}

func TestInexactValues(t *testing.T) {
	inexact := []float64{0.1, math.Pi, 65505, 1e300, 1e-300, 2049}
	for _, f := range inexact {
		if _, ok := FromFloat64(f); ok {
			t.Errorf("%g should not be half-exact", f)
		}
	}
}

func TestSpecials(t *testing.T) {
	if h, ok := FromFloat64(math.Inf(1)); !ok || !math.IsInf(ToFloat64(h), 1) {
		t.Error("+Inf")
	}
	if h, ok := FromFloat64(math.Inf(-1)); !ok || !math.IsInf(ToFloat64(h), -1) {
		t.Error("-Inf")
	}
	if h, ok := FromFloat64(math.NaN()); !ok || !math.IsNaN(ToFloat64(h)) {
		t.Error("NaN")
	}
	nz := math.Copysign(0, -1)
	if h, ok := FromFloat64(nz); !ok || !math.Signbit(ToFloat64(h)) {
		t.Error("-0")
	}
}

// Property: FromFloat64 never lies — if it reports exact, the round
// trip is bit-identical.
func TestQuickExactnessHonest(t *testing.T) {
	f := func(bits uint64) bool {
		fv := math.Float64frombits(bits)
		h, ok := FromFloat64(fv)
		if !ok {
			return true
		}
		back := ToFloat64(h)
		if math.IsNaN(fv) {
			return math.IsNaN(back)
		}
		return math.Float64bits(back) == bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: every half pattern widens and narrows consistently.
func TestAllHalfPatternsRoundTrip(t *testing.T) {
	for h := 0; h <= 0xFFFF; h++ {
		f := ToFloat64(uint16(h))
		h2, ok := FromFloat64(f)
		if !ok {
			t.Fatalf("half 0x%04x widened to %g reported inexact", h, f)
		}
		f2 := ToFloat64(h2)
		if f != f2 && !(math.IsNaN(f) && math.IsNaN(f2)) {
			t.Fatalf("half 0x%04x: %g != %g", h, f, f2)
		}
	}
}

func TestSingleFromFloat64(t *testing.T) {
	if s, ok := SingleFromFloat64(0.5); !ok || math.Float32frombits(s) != 0.5 {
		t.Error("0.5 single")
	}
	if _, ok := SingleFromFloat64(1e300); ok {
		t.Error("1e300 single-exact?")
	}
	f32 := float64(float32(0.1))
	if _, ok := SingleFromFloat64(f32); !ok {
		t.Error("float32(0.1) should be single-exact")
	}
	if _, ok := SingleFromFloat64(0.1); ok {
		t.Error("0.1 should not be single-exact")
	}
}
