// Package float16 implements IEEE 754 binary16 (and lossless
// binary32) conversion, shared by the JSONB encoder (§5.1) and the
// CBOR codec: both store a double in a narrower width only when the
// round-trip is exact, so decoding never makes rounding decisions.
package float16

import "math"

// FromFloat64 converts f to binary16 and reports whether the
// conversion is exact (converting back yields bit-identical f).
func FromFloat64(f float64) (uint16, bool) {
	h := roundFromFloat64(f)
	return h, ToFloat64(h) == f || (math.IsNaN(f) && isNaN16(h))
}

func isNaN16(h uint16) bool {
	return h&0x7C00 == 0x7C00 && h&0x03FF != 0
}

// roundFromFloat64 rounds f to the nearest binary16 value.
func roundFromFloat64(f float64) uint16 {
	b := math.Float64bits(f)
	sign := uint16(b>>48) & 0x8000
	exp := int((b >> 52) & 0x7FF)
	frac := b & 0xFFFFFFFFFFFFF

	switch {
	case exp == 0x7FF: // Inf or NaN
		if frac != 0 {
			return sign | 0x7C00 | 0x0200 // quiet NaN
		}
		return sign | 0x7C00
	case exp == 0 && frac == 0: // zero
		return sign
	}

	// Unbiased exponent.
	e := exp - 1023
	switch {
	case e > 15: // overflow to infinity — never lossless, caller rejects
		return sign | 0x7C00
	case e >= -14: // normal half
		he := uint16(e+15) << 10
		hf := uint16(frac >> 42)
		// Round to nearest even on the truncated bits.
		rem := frac & ((1 << 42) - 1)
		half := uint64(1) << 41
		if rem > half || (rem == half && hf&1 == 1) {
			hf++
			if hf == 0x400 {
				hf = 0
				he += 1 << 10
			}
		}
		return sign | he | hf
	case e >= -24: // subnormal half
		shift := uint(-e - 14)
		mant := (uint64(1) << 52) | frac
		hf := uint16(mant >> (42 + shift))
		rem := mant & ((1 << (42 + shift)) - 1)
		half := uint64(1) << (41 + shift)
		if rem > half || (rem == half && hf&1 == 1) {
			hf++
		}
		return sign | hf
	default: // underflow to zero
		return sign
	}
}

// ToFloat64 widens a binary16 value to float64 exactly.
func ToFloat64(h uint16) float64 {
	sign := uint64(h&0x8000) << 48
	exp := uint64(h>>10) & 0x1F
	frac := uint64(h & 0x3FF)

	switch exp {
	case 0:
		if frac == 0 { // zero
			return math.Float64frombits(sign)
		}
		// Subnormal half: value is frac × 2⁻²⁴, i.e. 0.frac × 2⁻¹⁴.
		e := -14
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= 0x3FF
		return math.Float64frombits(sign | uint64(e+1023)<<52 | frac<<42)
	case 0x1F:
		if frac == 0 {
			return math.Float64frombits(sign | 0x7FF<<52)
		}
		return math.Float64frombits(sign | 0x7FF<<52 | frac<<42)
	default:
		return math.Float64frombits(sign | (exp-15+1023)<<52 | frac<<42)
	}
}

// SingleFromFloat64 converts f to binary32 and reports losslessness.
func SingleFromFloat64(f float64) (uint32, bool) {
	s := float32(f)
	if float64(s) == f {
		return math.Float32bits(s), true
	}
	if math.IsNaN(f) {
		return math.Float32bits(float32(math.NaN())), true
	}
	return 0, false
}
