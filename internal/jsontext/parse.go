// Package jsontext implements an RFC 8259 JSON text parser and
// serializer over the jsonvalue document model. It is the ingestion
// path for every storage format in this repository: raw strings,
// per-document JSONB, and JSON tiles all start from Parse.
//
// The parser is a hand-written recursive-descent parser: no
// reflection, no interface{} trees, a single []byte cursor. Integers
// that fit int64 become KindInt, everything else numeric becomes
// KindFloat — the distinction feeds the type-paired key paths of the
// tile extraction algorithm (paper §3.4).
package jsontext

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode/utf16"
	"unicode/utf8"

	"repro/internal/jsonvalue"
)

// SyntaxError describes a malformed JSON input.
type SyntaxError struct {
	Offset int    // byte offset of the error
	Msg    string // what went wrong
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("json: %s at offset %d", e.Msg, e.Offset)
}

type parser struct {
	data []byte
	pos  int
	// depth guards against stack exhaustion from pathological nesting.
	depth int
}

// MaxDepth bounds the nesting level the parser accepts. RFC 8259
// permits implementations to set such a limit.
const MaxDepth = 512

// Parse parses a single JSON document and requires that nothing but
// whitespace follows it.
func Parse(data []byte) (jsonvalue.Value, error) {
	p := parser{data: data}
	p.skipSpace()
	v, err := p.parseValue()
	if err != nil {
		return jsonvalue.Null(), err
	}
	p.skipSpace()
	if p.pos != len(p.data) {
		return jsonvalue.Null(), p.errf("trailing data after document")
	}
	return v, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (jsonvalue.Value, error) { return Parse([]byte(s)) }

// Valid reports whether data is a syntactically valid JSON document.
func Valid(data []byte) bool {
	_, err := Parse(data)
	return err == nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) parseValue() (jsonvalue.Value, error) {
	if p.pos >= len(p.data) {
		return jsonvalue.Null(), p.errf("unexpected end of input")
	}
	switch c := p.data[p.pos]; {
	case c == '{':
		return p.parseObject()
	case c == '[':
		return p.parseArray()
	case c == '"':
		s, err := p.parseString()
		if err != nil {
			return jsonvalue.Null(), err
		}
		return jsonvalue.String(s), nil
	case c == 't':
		if err := p.expect("true"); err != nil {
			return jsonvalue.Null(), err
		}
		return jsonvalue.Bool(true), nil
	case c == 'f':
		if err := p.expect("false"); err != nil {
			return jsonvalue.Null(), err
		}
		return jsonvalue.Bool(false), nil
	case c == 'n':
		if err := p.expect("null"); err != nil {
			return jsonvalue.Null(), err
		}
		return jsonvalue.Null(), nil
	case c == '-' || (c >= '0' && c <= '9'):
		return p.parseNumber()
	default:
		return jsonvalue.Null(), p.errf("unexpected character %q", c)
	}
}

func (p *parser) expect(lit string) error {
	if p.pos+len(lit) > len(p.data) || string(p.data[p.pos:p.pos+len(lit)]) != lit {
		return p.errf("invalid literal, expected %q", lit)
	}
	p.pos += len(lit)
	return nil
}

func (p *parser) parseObject() (jsonvalue.Value, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > MaxDepth {
		return jsonvalue.Null(), p.errf("nesting too deep (> %d)", MaxDepth)
	}
	p.pos++ // consume '{'
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == '}' {
		p.pos++
		return jsonvalue.Object(), nil
	}
	var members []jsonvalue.Member
	for {
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != '"' {
			return jsonvalue.Null(), p.errf("expected object key string")
		}
		key, err := p.parseString()
		if err != nil {
			return jsonvalue.Null(), err
		}
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != ':' {
			return jsonvalue.Null(), p.errf("expected ':' after object key")
		}
		p.pos++
		p.skipSpace()
		val, err := p.parseValue()
		if err != nil {
			return jsonvalue.Null(), err
		}
		members = append(members, jsonvalue.Member{Key: key, Value: val})
		p.skipSpace()
		if p.pos >= len(p.data) {
			return jsonvalue.Null(), p.errf("unterminated object")
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return jsonvalue.Object(members...), nil
		default:
			return jsonvalue.Null(), p.errf("expected ',' or '}' in object")
		}
	}
}

func (p *parser) parseArray() (jsonvalue.Value, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > MaxDepth {
		return jsonvalue.Null(), p.errf("nesting too deep (> %d)", MaxDepth)
	}
	p.pos++ // consume '['
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == ']' {
		p.pos++
		return jsonvalue.Array(), nil
	}
	var elems []jsonvalue.Value
	for {
		p.skipSpace()
		v, err := p.parseValue()
		if err != nil {
			return jsonvalue.Null(), err
		}
		elems = append(elems, v)
		p.skipSpace()
		if p.pos >= len(p.data) {
			return jsonvalue.Null(), p.errf("unterminated array")
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return jsonvalue.Array(elems...), nil
		default:
			return jsonvalue.Null(), p.errf("expected ',' or ']' in array")
		}
	}
}

// parseString parses a JSON string starting at the opening quote. The
// fast path copies a run of plain bytes; escapes fall into the slow
// path that appends rune by rune.
func (p *parser) parseString() (string, error) {
	p.pos++ // consume '"'
	start := p.pos
	// Fast path: scan for the closing quote with no escapes.
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		if c == '"' {
			s := string(p.data[start:p.pos])
			p.pos++
			return sanitizeUTF8(s), nil
		}
		if c == '\\' || c < 0x20 {
			break
		}
		p.pos++
	}
	// Slow path with escape handling.
	buf := make([]byte, 0, p.pos-start+16)
	buf = append(buf, p.data[start:p.pos]...)
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			p.pos++
			return sanitizeUTF8(string(buf)), nil
		case c < 0x20:
			return "", p.errf("unescaped control character 0x%02x in string", c)
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return "", p.errf("unterminated escape")
			}
			switch e := p.data[p.pos]; e {
			case '"', '\\', '/':
				buf = append(buf, e)
				p.pos++
			case 'b':
				buf = append(buf, '\b')
				p.pos++
			case 'f':
				buf = append(buf, '\f')
				p.pos++
			case 'n':
				buf = append(buf, '\n')
				p.pos++
			case 'r':
				buf = append(buf, '\r')
				p.pos++
			case 't':
				buf = append(buf, '\t')
				p.pos++
			case 'u':
				r, err := p.parseUnicodeEscape()
				if err != nil {
					return "", err
				}
				buf = utf8.AppendRune(buf, r)
			default:
				return "", p.errf("invalid escape character %q", e)
			}
		default:
			buf = append(buf, c)
			p.pos++
		}
	}
	return "", p.errf("unterminated string")
}

// sanitizeUTF8 replaces invalid UTF-8 sequences with U+FFFD, matching
// encoding/json: RFC 8259 requires UTF-8 for interchange, and keeping
// strings valid makes text serialization a fixed point.
func sanitizeUTF8(s string) string {
	if utf8.ValidString(s) {
		return s
	}
	return strings.ToValidUTF8(s, "�")
}

// parseUnicodeEscape handles \uXXXX, including UTF-16 surrogate pairs.
// The cursor is on the 'u'.
func (p *parser) parseUnicodeEscape() (rune, error) {
	r1, err := p.hex4()
	if err != nil {
		return 0, err
	}
	if utf16.IsSurrogate(r1) {
		// A high surrogate must be followed by \uXXXX low surrogate;
		// anything else decodes to U+FFFD, matching encoding/json.
		if p.pos+1 < len(p.data) && p.data[p.pos] == '\\' && p.data[p.pos+1] == 'u' {
			save := p.pos
			p.pos++ // consume '\\'; hex4 consumes the 'u'
			r2, err := p.hex4()
			if err != nil {
				return 0, err
			}
			if dec := utf16.DecodeRune(r1, r2); dec != utf8.RuneError {
				return dec, nil
			}
			p.pos = save
		}
		return utf8.RuneError, nil
	}
	return r1, nil
}

// hex4 reads the four hex digits after \u; the cursor is on 'u'.
func (p *parser) hex4() (rune, error) {
	p.pos++ // consume 'u'
	if p.pos+4 > len(p.data) {
		return 0, p.errf("truncated \\u escape")
	}
	var r rune
	for i := 0; i < 4; i++ {
		c := p.data[p.pos+i]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, p.errf("invalid hex digit %q in \\u escape", c)
		}
	}
	p.pos += 4
	return r, nil
}

// parseNumber parses the RFC 8259 number grammar. A number without
// fraction or exponent that fits int64 becomes KindInt; everything
// else becomes KindFloat.
func (p *parser) parseNumber() (jsonvalue.Value, error) {
	start := p.pos
	if p.data[p.pos] == '-' {
		p.pos++
	}
	// int part
	if p.pos >= len(p.data) {
		return jsonvalue.Null(), p.errf("truncated number")
	}
	switch {
	case p.data[p.pos] == '0':
		p.pos++
	case p.data[p.pos] >= '1' && p.data[p.pos] <= '9':
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
		}
	default:
		return jsonvalue.Null(), p.errf("invalid number")
	}
	isFloat := false
	// fraction
	if p.pos < len(p.data) && p.data[p.pos] == '.' {
		isFloat = true
		p.pos++
		if p.pos >= len(p.data) || p.data[p.pos] < '0' || p.data[p.pos] > '9' {
			return jsonvalue.Null(), p.errf("digit expected after decimal point")
		}
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
		}
	}
	// exponent
	if p.pos < len(p.data) && (p.data[p.pos] == 'e' || p.data[p.pos] == 'E') {
		isFloat = true
		p.pos++
		if p.pos < len(p.data) && (p.data[p.pos] == '+' || p.data[p.pos] == '-') {
			p.pos++
		}
		if p.pos >= len(p.data) || p.data[p.pos] < '0' || p.data[p.pos] > '9' {
			return jsonvalue.Null(), p.errf("digit expected in exponent")
		}
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
		}
	}
	lit := string(p.data[start:p.pos])
	if !isFloat {
		if i, err := strconv.ParseInt(lit, 10, 64); err == nil {
			return jsonvalue.Int(i), nil
		}
		// Out-of-range integer literals degrade to float, like most
		// double-based JSON implementations (RFC 8259 §6).
	}
	f, err := strconv.ParseFloat(lit, 64)
	if err != nil || math.IsInf(f, 0) {
		return jsonvalue.Null(), p.errf("number %q out of range", lit)
	}
	return jsonvalue.Float(f), nil
}
