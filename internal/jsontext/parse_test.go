package jsontext

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/jsongen"
	"repro/internal/jsonvalue"
)

func mustParse(t *testing.T, s string) jsonvalue.Value {
	t.Helper()
	v, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", s, err)
	}
	return v
}

func TestParseScalars(t *testing.T) {
	tests := []struct {
		in   string
		want jsonvalue.Value
	}{
		{`null`, jsonvalue.Null()},
		{`true`, jsonvalue.Bool(true)},
		{`false`, jsonvalue.Bool(false)},
		{`0`, jsonvalue.Int(0)},
		{`-0`, jsonvalue.Int(0)},
		{`42`, jsonvalue.Int(42)},
		{`-17`, jsonvalue.Int(-17)},
		{`9223372036854775807`, jsonvalue.Int(math.MaxInt64)},
		{`-9223372036854775808`, jsonvalue.Int(math.MinInt64)},
		{`1.5`, jsonvalue.Float(1.5)},
		{`-2.25`, jsonvalue.Float(-2.25)},
		{`1e3`, jsonvalue.Float(1000)},
		{`1E-2`, jsonvalue.Float(0.01)},
		{`2.5e+1`, jsonvalue.Float(25)},
		{`""`, jsonvalue.String("")},
		{`"abc"`, jsonvalue.String("abc")},
		{`"a\"b"`, jsonvalue.String(`a"b`)},
		{`"\\\/\b\f\n\r\t"`, jsonvalue.String("\\/\b\f\n\r\t")},
		{`"A"`, jsonvalue.String("A")},
		{`"é"`, jsonvalue.String("é")},
		{`"😀"`, jsonvalue.String("😀")},
		{`  42  `, jsonvalue.Int(42)},
	}
	for _, tt := range tests {
		got := mustParse(t, tt.in)
		if !got.Equal(tt.want) {
			t.Errorf("Parse(%q) = %#v, want %#v", tt.in, got, tt.want)
		}
	}
}

func TestParseIntOverflowBecomesFloat(t *testing.T) {
	v := mustParse(t, `9223372036854775808`) // MaxInt64+1
	if v.Kind() != jsonvalue.KindFloat {
		t.Fatalf("kind = %v, want float", v.Kind())
	}
	if v.FloatVal() != 9.223372036854776e18 {
		t.Errorf("value = %g", v.FloatVal())
	}
}

func TestParseContainers(t *testing.T) {
	v := mustParse(t, `{"id":1, "user": {"name":"bo","tags":["a","b"]}, "geo": null}`)
	if v.Kind() != jsonvalue.KindObject || v.Len() != 3 {
		t.Fatalf("bad object: %#v", v)
	}
	if got := v.GetPath("user", "name"); !got.Equal(jsonvalue.String("bo")) {
		t.Errorf("user.name = %#v", got)
	}
	tags := v.GetPath("user", "tags")
	if tags.Kind() != jsonvalue.KindArray || tags.Len() != 2 {
		t.Fatalf("tags = %#v", tags)
	}
	if !tags.Elem(1).Equal(jsonvalue.String("b")) {
		t.Errorf("tags[1] = %#v", tags.Elem(1))
	}
	if g, ok := v.Lookup("geo"); !ok || !g.IsNull() {
		t.Errorf("geo = %#v, ok=%v", g, ok)
	}
	if _, ok := v.Lookup("missing"); ok {
		t.Error("missing key reported present")
	}
}

func TestParseEmptyContainers(t *testing.T) {
	if v := mustParse(t, `{}`); v.Kind() != jsonvalue.KindObject || v.Len() != 0 {
		t.Errorf("empty object: %#v", v)
	}
	if v := mustParse(t, `[]`); v.Kind() != jsonvalue.KindArray || v.Len() != 0 {
		t.Errorf("empty array: %#v", v)
	}
	if v := mustParse(t, `[[],{}]`); v.Len() != 2 {
		t.Errorf("nested empties: %#v", v)
	}
}

func TestParseDuplicateKeysLastWins(t *testing.T) {
	v := mustParse(t, `{"a":1,"a":2}`)
	if got := v.Get("a"); !got.Equal(jsonvalue.Int(2)) {
		t.Errorf("a = %#v, want 2", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `  `, `{`, `}`, `[`, `]`, `{]`, `[}`,
		`{"a"}`, `{"a":}`, `{"a":1,}`, `{,}`, `{1:2}`,
		`[1,]`, `[,1]`, `[1 2]`,
		`"`, `"abc`, `"\x"`, `"\u12"`, `"\u12zz"`,
		"\"a\x01b\"",
		`tru`, `truee`, `nul`, `falsee`,
		`01`, `1.`, `.5`, `1e`, `1e+`, `+1`, `--1`, `1..2`, `NaN`, `Infinity`,
		`{"a":1} extra`, `1 2`,
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", s)
		}
	}
}

func TestParseDeepNestingLimit(t *testing.T) {
	deep := strings.Repeat("[", MaxDepth+1) + strings.Repeat("]", MaxDepth+1)
	if _, err := ParseString(deep); err == nil {
		t.Fatal("expected depth-limit error")
	}
	okDepth := strings.Repeat("[", MaxDepth-1) + "1" + strings.Repeat("]", MaxDepth-1)
	if _, err := ParseString(okDepth); err != nil {
		t.Fatalf("depth %d should parse: %v", MaxDepth-1, err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	docs := []string{
		`null`, `true`, `false`, `0`, `-17`, `3.5`, `"hi"`, `""`,
		`{"id":1,"create":"3/06","text":"a","user":{"id":1}}`,
		`[1,2.5,"x",null,true,[],{}]`,
		`{"a":{"b":{"c":[1,2,3]}}}`,
		`{"quote":"a\"b","newline":"a\nb","unicode":"é😀"}`,
	}
	for _, s := range docs {
		v := mustParse(t, s)
		out := SerializeString(v)
		v2 := mustParse(t, out)
		if !v.Equal(v2) {
			t.Errorf("round trip %q -> %q changed value", s, out)
		}
	}
}

func TestSerializePreservesKeyOrder(t *testing.T) {
	v := mustParse(t, `{"z":1,"a":2,"m":3}`)
	if got := SerializeString(v); got != `{"z":1,"a":2,"m":3}` {
		t.Errorf("serialize = %s", got)
	}
}

func TestSerializeEscapes(t *testing.T) {
	v := jsonvalue.String("a\"b\\c\nd\x01e")
	got := SerializeString(v)
	want := "\"a\\\"b\\\\c\\nd\\u0001e\""
	if got != want {
		t.Errorf("serialize = %s, want %s", got, want)
	}
	if _, err := ParseString(got); err != nil {
		t.Errorf("serialized output does not re-parse: %v", err)
	}
}

func TestSerializeInvalidUTF8Replaced(t *testing.T) {
	v := jsonvalue.String("a\xffb")
	got := SerializeString(v)
	back := mustParse(t, got)
	if back.StringVal() != "a�b" {
		t.Errorf("got %q", back.StringVal())
	}
}

func TestSerializeNaNInfAsNull(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		got := SerializeString(jsonvalue.Float(f))
		if got != "null" {
			t.Errorf("Serialize(%v) = %s, want null", f, got)
		}
	}
}

// Property: parse(serialize(v)) == v for generated values.
func TestQuickRoundTrip(t *testing.T) {
	f := func(g jsongen.Gen) bool {
		v := g.V
		out := Serialize(v)
		back, err := Parse(out)
		if err != nil {
			return false
		}
		return v.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Valid agrees with Parse.
func TestQuickValidMatchesParse(t *testing.T) {
	f := func(data []byte) bool {
		_, err := Parse(data)
		return Valid(data) == (err == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
