package jsontext

import (
	"math"
	"strconv"
	"unicode/utf8"

	"repro/internal/jsonvalue"
)

// Append serializes v as compact JSON text appended to dst. Object key
// order follows the member slice, so a value parsed by this package
// round-trips with its original key order.
func Append(dst []byte, v jsonvalue.Value) []byte {
	switch v.Kind() {
	case jsonvalue.KindNull:
		return append(dst, "null"...)
	case jsonvalue.KindBool:
		if v.BoolVal() {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case jsonvalue.KindInt:
		return strconv.AppendInt(dst, v.IntVal(), 10)
	case jsonvalue.KindFloat:
		return appendFloat(dst, v.FloatVal())
	case jsonvalue.KindString:
		return AppendQuoted(dst, v.StringVal())
	case jsonvalue.KindArray:
		dst = append(dst, '[')
		for i, e := range v.Elems() {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = Append(dst, e)
		}
		return append(dst, ']')
	case jsonvalue.KindObject:
		dst = append(dst, '{')
		for i, m := range v.Members() {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = AppendQuoted(dst, m.Key)
			dst = append(dst, ':')
			dst = Append(dst, m.Value)
		}
		return append(dst, '}')
	}
	return dst
}

// Serialize returns v as compact JSON text.
func Serialize(v jsonvalue.Value) []byte { return Append(nil, v) }

// SerializeString returns v as a compact JSON string.
func SerializeString(v jsonvalue.Value) string { return string(Serialize(v)) }

// appendFloat writes a float the way RFC 8259 consumers expect:
// shortest representation that round-trips, never "Inf"/"NaN" (those
// are not representable in JSON; NaN degrades to null). Integral
// floats keep a ".0" suffix so the Int/Float distinction — which the
// tile extraction's type-paired key paths depend on — survives a
// text round trip.
func appendFloat(dst []byte, f float64) []byte { return AppendFloat(dst, f) }

// AppendFloat appends the JSON text form of a float (shared with the
// binary-format serializer so both emit identical number syntax).
func AppendFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, "null"...)
	}
	start := len(dst)
	dst = strconv.AppendFloat(dst, f, 'g', -1, 64)
	for _, c := range dst[start:] {
		if c == '.' || c == 'e' || c == 'E' {
			return dst
		}
	}
	return append(dst, '.', '0')
}

const hexDigits = "0123456789abcdef"

// AppendQuoted appends s as a quoted, escaped JSON string.
func AppendQuoted(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' && c < utf8.RuneSelf {
			i++
			continue
		}
		if c >= utf8.RuneSelf {
			// Validate UTF-8; invalid sequences are replaced so the
			// output is always valid JSON text.
			r, size := utf8.DecodeRuneInString(s[i:])
			if r == utf8.RuneError && size == 1 {
				dst = append(dst, s[start:i]...)
				dst = append(dst, "\\ufffd"...)
				i++
				start = i
				continue
			}
			i += size
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"':
			dst = append(dst, '\\', '"')
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\b':
			dst = append(dst, '\\', 'b')
		case '\f':
			dst = append(dst, '\\', 'f')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		i++
		start = i
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
