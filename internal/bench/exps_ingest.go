package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/tile"
)

// ingestBenchFile records the on-demand ingest comparison (committed
// next to EXPERIMENTS.md as the loading baseline).
const ingestBenchFile = "BENCH_ingest.json"

// ingestPoint is one (format, ingest mode) load measurement.
type ingestPoint struct {
	Format string `json:"format"`
	// Mode is "tape" (structural-tape ingest, DESIGN.md §6.8) or
	// "tree" (boxed jsonvalue ingest, LoaderConfig.TreeIngest).
	Mode       string  `json:"mode"`
	Secs       float64 `json:"secs"`
	DocsPerSec float64 `json:"docs_per_sec"`
	// Phase breakdown in seconds (Tiles only; zero elsewhere): the
	// paper's Figure-16 phases.
	Parse   float64 `json:"parse_secs,omitempty"`
	Mine    float64 `json:"mine_secs,omitempty"`
	Extract float64 `json:"extract_secs,omitempty"`
	JSONB   float64 `json:"jsonb_secs,omitempty"`
	Reorder float64 `json:"reorder_secs,omitempty"`
	// Ingest-path accounting for this load (Tiles only).
	DocsTape        int64 `json:"docs_tape"`
	DocsTree        int64 `json:"docs_tree"`
	SubtreesSkipped int64 `json:"subtrees_skipped"`
}

type ingestReport struct {
	Workload string        `json:"workload"`
	Docs     int           `json:"docs"`
	NumCPU   int           `json:"numcpu"`
	Workers  int           `json:"workers"`
	Points   []ingestPoint `json:"points"`
	// Speedup maps format → tape docs/sec over tree docs/sec (>1
	// means the tape path loads faster).
	Speedup map[string]float64 `json:"speedup"`
	// TreeFallbackDocs is the process-wide ingest_docs_tree_fallback
	// delta over the tape-mode loads: 0 on these homogeneous inputs.
	TreeFallbackDocs int64 `json:"tree_fallback_docs"`
}

// ingestLoad performs one load and returns the median wall time plus
// the per-phase metrics of the last repetition.
func (c *Context) ingestLoad(kind storage.FormatKind, lines [][]byte, treeIngest bool) (time.Duration, tile.MetricsSnapshot) {
	var snap tile.MetricsSnapshot
	times := make([]time.Duration, 0, c.Opts.Repeats)
	for i := 0; i < c.Opts.Repeats; i++ {
		m := &tile.Metrics{}
		cfg := storage.DefaultLoaderConfig()
		cfg.Metrics = m
		cfg.TreeIngest = treeIngest
		l, err := storage.NewLoader(kind, cfg)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		if _, err := l.Load("ingest", lines, c.Opts.workers()); err != nil {
			panic(err)
		}
		times = append(times, time.Since(start))
		snap = m.Snapshot()
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], snap
}

// ingestExp — tape vs tree ingest across every storage format,
// recording BENCH_ingest.json. The structural-tape path (§6.8) parses
// each document once into a tape and feeds extraction and JSONB
// encoding directly from it; the tree path materializes boxed
// jsonvalue documents first (the pre-tape implementation, kept as
// LoaderConfig.TreeIngest).
func ingestExp(w io.Writer, c *Context) error {
	lines := c.tpchShuffled()
	report := ingestReport{
		Workload: "tpch-shuffled", Docs: len(lines),
		NumCPU: runtime.NumCPU(), Workers: c.Opts.workers(),
		Speedup: map[string]float64{},
	}

	t := &table{header: []string{"format", "tree s", "tape s", "tree docs/s", "tape docs/s", "speedup"}}
	var tapeFallback int64
	for _, kind := range allFormats {
		treeD, treeSnap := c.ingestLoad(kind, lines, true)
		fb := obs.IngestDocsTreeFallback.Load()
		tapeD, tapeSnap := c.ingestLoad(kind, lines, false)
		tapeFallback += obs.IngestDocsTreeFallback.Load() - fb

		mk := func(mode string, d time.Duration, s tile.MetricsSnapshot) ingestPoint {
			return ingestPoint{
				Format: string(kind), Mode: mode,
				Secs:       d.Seconds(),
				DocsPerSec: float64(len(lines)) / maxf(d.Seconds(), 1e-9),
				Parse:      time.Duration(s.ParseNanos).Seconds(),
				Mine:       time.Duration(s.MineNanos).Seconds(),
				Extract:    time.Duration(s.ExtractNanos).Seconds(),
				JSONB:      time.Duration(s.WriteJSONBNanos).Seconds(),
				Reorder:    time.Duration(s.ReorderNanos).Seconds(),
				DocsTape:   s.DocsTape, DocsTree: s.DocsTree,
				SubtreesSkipped: s.SubtreesSkipped,
			}
		}
		tree := mk("tree", treeD, treeSnap)
		tape := mk("tape", tapeD, tapeSnap)
		report.Points = append(report.Points, tree, tape)
		speedup := tape.DocsPerSec / maxf(tree.DocsPerSec, 1e-9)
		report.Speedup[string(kind)] = speedup
		t.row(string(kind), secs(treeD), secs(tapeD),
			fmt.Sprintf("%.0f", tree.DocsPerSec), fmt.Sprintf("%.0f", tape.DocsPerSec),
			fmt.Sprintf("%.2fx", speedup))
	}
	report.TreeFallbackDocs = tapeFallback
	t.write(w)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	path := filepath.Join(c.Opts.OutDir, ingestBenchFile)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "ingest comparison written to %s (tape-mode tree fallbacks: %d)\n",
		path, tapeFallback)
	return nil
}

// IngestSmoke is the CI gate: the tape ingest of the Tiles format must
// beat the tree ingest by minSpeedup in docs/sec, with zero tree
// fallbacks on the homogeneous TPC-H input. Unlike the morsel gate
// this holds on any core count — the win is per-document, not from
// parallelism.
func IngestSmoke(w io.Writer, c *Context, minSpeedup float64) error {
	lines := c.tpchShuffled()
	treeD, _ := c.ingestLoad(storage.KindTiles, lines, true)
	fb := obs.IngestDocsTreeFallback.Load()
	tapeD, tapeSnap := c.ingestLoad(storage.KindTiles, lines, false)
	fallbacks := obs.IngestDocsTreeFallback.Load() - fb
	speedup := treeD.Seconds() / maxf(tapeD.Seconds(), 1e-9)
	fmt.Fprintf(w, "tiles load tree %s, tape %s: %.2fx (%d docs, %d tape / %d tree, numcpu=%d)\n",
		treeD, tapeD, speedup, len(lines), tapeSnap.DocsTape, tapeSnap.DocsTree, runtime.NumCPU())
	if fallbacks != 0 {
		return fmt.Errorf("tape ingest fell back to trees for %d documents on homogeneous input", fallbacks)
	}
	if speedup < minSpeedup {
		return fmt.Errorf("tape ingest speedup = %.2fx, below the %.2fx gate", speedup, minSpeedup)
	}
	return nil
}
