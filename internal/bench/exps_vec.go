package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/exprparse"
	"repro/internal/obs"
	"repro/internal/storage"
)

// vecBenchFile is where the vec experiment records its measurements
// (committed next to EXPERIMENTS.md as the vectorization baseline).
const vecBenchFile = "BENCH_vectorized.json"

// vecResult is one row of the recorded baseline.
type vecResult struct {
	Query      string  `json:"query"`
	RowSecs    float64 `json:"row_secs"`
	VecSecs    float64 `json:"vec_secs"`
	Speedup    float64 `json:"speedup"`
	RowsPerSec float64 `json:"vec_rows_per_sec"`
}

// vecSweepPoint is one worker count of the vectorized scalability
// sweep (filter+groupby pipeline, batch path).
type vecSweepPoint struct {
	Workers int     `json:"workers"`
	VecSecs float64 `json:"vec_secs"`
	// Speedup is relative to the same pipeline at workers=1.
	Speedup float64 `json:"speedup"`
}

type vecReport struct {
	Workload string          `json:"workload"`
	Rows     int             `json:"rows"`
	Workers  int             `json:"workers"`
	NumCPU   int             `json:"numcpu"`
	Results  []vecResult     `json:"results"`
	Sweep    []vecSweepPoint `json:"workers_sweep"`
	// Metrics is the process-wide instrument delta over the experiment
	// (counters, gauges, histograms) — what the run cost in engine
	// terms, not just wall clock.
	Metrics obs.Snapshot `json:"metrics"`
}

// vecQueries are the micro-pipelines both paths execute: scan+filter,
// scan+sum, and filter+group-by over lineitem accesses that tiles
// serve from extracted int/float columns.
func vecQueries() []struct {
	name string
	run  func(rel storage.Relation, workers int)
} {
	accs := func() []storage.Access {
		return []storage.Access{
			exprparse.MustParse(`data->>'l_linenumber'::BigInt`),
			exprparse.MustParse(`data->>'l_quantity'::Float`),
			exprparse.MustParse(`data->>'l_partkey'::BigInt`),
		}
	}
	filter := func() expr.Expr {
		return expr.NewCmp(expr.LT, expr.NewCol(0, expr.TBigInt),
			expr.NewConst(expr.IntValue(4)))
	}
	return []struct {
		name string
		run  func(rel storage.Relation, workers int)
	}{
		{"scan+filter", func(rel storage.Relation, workers int) {
			engine.CountRows(engine.NewScan(rel, accs(), nil, filter()), workers)
		}},
		{"scan+sum", func(rel storage.Relation, workers int) {
			gb := engine.NewGroupBy(engine.NewScan(rel, accs(), nil, nil), nil, nil,
				[]engine.AggSpec{
					{Func: engine.Sum, Arg: expr.NewCol(0, expr.TBigInt), Name: "s"},
					{Func: engine.Sum, Arg: expr.NewCol(1, expr.TFloat), Name: "q"},
				})
			engine.Materialize(gb, workers)
		}},
		{"filter+groupby", func(rel storage.Relation, workers int) {
			gb := engine.NewGroupBy(engine.NewScan(rel, accs(), nil, filter()),
				[]expr.Expr{expr.NewCol(0, expr.TBigInt)}, []string{"ln"},
				[]engine.AggSpec{
					{Func: engine.CountStar, Name: "n"},
					{Func: engine.Sum, Arg: expr.NewCol(1, expr.TFloat), Name: "q"},
				})
			engine.Materialize(gb, workers)
		}},
	}
}

// vecExp — vectorized vs row-at-a-time execution over the tile
// format: the same pipelines with batch scanning enabled (default)
// and disabled (storage.RowOnly), recording the baseline to
// BENCH_vectorized.json.
func vecExp(w io.Writer, c *Context) error {
	workers := c.Opts.workers()
	metricsBase := obs.Default.Snapshot()
	rel := c.relation("tpch-lineitem", storage.KindTiles, c.lineitemLines)
	rowRel := storage.RowOnly(rel)

	report := vecReport{Workload: "tpch-lineitem", Rows: rel.NumRows(),
		Workers: workers, NumCPU: runtime.NumCPU()}
	t := &table{header: []string{"query", "row s", "vec s", "speedup"}}
	for _, q := range vecQueries() {
		rowD := c.timeIt(func() { q.run(rowRel, workers) })
		vecD := c.timeIt(func() { q.run(rel, workers) })
		speedup := rowD.Seconds() / vecD.Seconds()
		t.row(q.name, secs(rowD), secs(vecD), fmt.Sprintf("%.1fx", speedup))
		report.Results = append(report.Results, vecResult{
			Query:   q.name,
			RowSecs: rowD.Seconds(),
			VecSecs: vecD.Seconds(),
			Speedup: speedup,
			RowsPerSec: float64(rel.NumRows()) /
				maxf(vecD.Seconds(), 1e-9),
		})
	}
	t.write(w)

	// Worker sweep of the vectorized filter+groupby pipeline: how the
	// batch path scales now that morsels feed the workers.
	gq := vecQueries()[2]
	var base float64
	for _, ws := range morselSweepWorkers() {
		d := c.timeIt(func() { gq.run(rel, ws) })
		s := d.Seconds()
		if ws == 1 {
			base = s
		}
		report.Sweep = append(report.Sweep, vecSweepPoint{
			Workers: ws, VecSecs: s, Speedup: base / maxf(s, 1e-9),
		})
	}

	report.Metrics = obs.Default.Snapshot().Diff(metricsBase)
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	path := filepath.Join(c.Opts.OutDir, vecBenchFile)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline written to %s\n", path)
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
