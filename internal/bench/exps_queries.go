package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/storage"
	"repro/internal/workload/tpch"
	"repro/internal/workload/twitter"
	"repro/internal/workload/yelp"
)

// fig7 — Figure 7: Q1/Q18 throughput across formats at full
// parallelism. The paper's external systems (PostgreSQL, Spark+Mongo,
// Spark+Parquet, Hyper) are substituted by the internal baselines that
// model their storage designs (see DESIGN.md §2): raw JSON ≈ Hyper's
// JSON column, Shredded ≈ Spark/Parquet.
func fig7(w io.Writer, c *Context) error {
	workers := c.Opts.workers()
	for _, num := range []int{1, 18} {
		fmt.Fprintf(w, "Q%d (queries/sec, %d workers)\n", num, workers)
		t := &table{header: []string{"format", "q/s", "seconds"}}
		for _, kind := range allFormats {
			d := c.runTPCHQuery(c.tpchRel(kind), num, workers)
			t.row(string(kind), qps(d), secs(d))
		}
		t.write(w)
		fmt.Fprintln(w)
	}
	return nil
}

// fig8 — Figure 8: scalability of the internal competitors.
func fig8(w io.Writer, c *Context) error {
	maxW := c.Opts.workers()
	var sweep []int
	for n := 1; n <= maxW; n *= 2 {
		sweep = append(sweep, n)
	}
	if sweep[len(sweep)-1] != maxW {
		sweep = append(sweep, maxW)
	}
	for _, num := range []int{1, 18} {
		fmt.Fprintf(w, "Q%d queries/sec by #workers\n", num)
		t := &table{header: append([]string{"format"}, intHeaders(sweep)...)}
		for _, kind := range internalFormats {
			rel := c.tpchRel(kind)
			cells := []string{string(kind)}
			for _, n := range sweep {
				cells = append(cells, qps(c.runTPCHQuery(rel, num, n)))
			}
			t.row(cells...)
		}
		t.write(w)
		fmt.Fprintln(w)
	}
	return nil
}

func intHeaders(ns []int) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = fmt.Sprintf("w=%d", n)
	}
	return out
}

// tab1 — Table 1: all 22 TPC-H queries across formats.
func tab1(w io.Writer, c *Context) error {
	workers := c.Opts.workers()
	t := &table{header: append([]string{"Q"}, formatHeaders(allFormats)...)}
	for _, q := range tpch.Queries() {
		cells := []string{fmt.Sprintf("%d", q.Num)}
		for _, kind := range allFormats {
			d := c.timeIt(func() { q.Run(c.tpchRel(kind), workers) })
			cells = append(cells, secs(d))
		}
		t.row(cells...)
	}
	t.write(w)
	return nil
}

func formatHeaders(kinds []storage.FormatKind) []string {
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = string(k)
	}
	return out
}

// tab2 — Table 2: the five Yelp queries.
func tab2(w io.Writer, c *Context) error {
	workers := c.Opts.workers()
	t := &table{header: append([]string{"Q"}, formatHeaders(allFormats)...)}
	for _, q := range yelp.Queries() {
		cells := []string{fmt.Sprintf("%d", q.Num)}
		for _, kind := range allFormats {
			d := c.timeIt(func() { q.Run(c.yelpRel(kind), workers) })
			cells = append(cells, secs(d))
		}
		t.row(cells...)
	}
	t.write(w)
	return nil
}

// tab3 — Table 3: the five Twitter queries, plus Tiles-* which joins
// extracted high-cardinality array relations (§6.3).
func tab3(w io.Writer, c *Context) error {
	workers := c.Opts.workers()
	star := c.twitterStar(false)
	t := &table{header: append(append([]string{"Q"}, formatHeaders(allFormats)...), "Tiles-*")}
	for _, q := range twitter.Queries() {
		cells := []string{fmt.Sprintf("%d", q.Num)}
		for _, kind := range allFormats {
			d := c.timeIt(func() { q.Run(c.twitterRel(kind), workers) })
			cells = append(cells, secs(d))
		}
		if q.RunStar != nil {
			d := c.timeIt(func() { q.RunStar(star, workers) })
			cells = append(cells, secs(d))
		} else {
			d := c.timeIt(func() { q.Run(star.Main, workers) })
			cells = append(cells, secs(d))
		}
		t.row(cells...)
	}
	t.write(w)
	return nil
}

// tab4 — Table 4: Twitter geo-means on the static and the changing
// (schema-evolution) data sets.
func tab4(w io.Writer, c *Context) error {
	workers := c.Opts.workers()
	kinds := []storage.FormatKind{storage.KindJSON, storage.KindJSONB,
		storage.KindSinew, storage.KindTiles}
	t := &table{header: append(append([]string{"dataset"}, formatHeaders(kinds)...), "Tiles-*")}
	for _, changing := range []bool{false, true} {
		name := "Twitter"
		if changing {
			name = "Changing"
		}
		lines := func() [][]byte { return c.twitterLines(changing) }
		cells := []string{name}
		for _, kind := range kinds {
			rel := c.relation("twitter-"+name, kind, lines)
			var ds []time.Duration
			for _, q := range twitter.Queries() {
				ds = append(ds, c.timeIt(func() { q.Run(rel, workers) }))
			}
			cells = append(cells, fmt.Sprintf("%.4f", geoMean(ds)))
		}
		star := c.twitterStar(changing)
		var ds []time.Duration
		for _, q := range twitter.Queries() {
			q := q
			if q.RunStar != nil {
				ds = append(ds, c.timeIt(func() { q.RunStar(star, workers) }))
			} else {
				ds = append(ds, c.timeIt(func() { q.Run(star.Main, workers) }))
			}
		}
		cells = append(cells, fmt.Sprintf("%.4f", geoMean(ds)))
		t.row(cells...)
	}
	t.write(w)
	return nil
}

// fig9 — Figure 9: geometric mean over all 22 queries on *shuffled*
// TPC-H, the robustness headline.
func fig9(w io.Writer, c *Context) error {
	workers := c.Opts.workers()
	t := &table{header: []string{"format", "geo-mean (s)"}}
	for _, kind := range internalFormats {
		rel := c.relation("tpch-shuffled", kind, c.tpchShuffled)
		var ds []time.Duration
		for _, q := range tpch.Queries() {
			q := q
			ds = append(ds, c.timeIt(func() { q.Run(rel, workers) }))
		}
		t.row(string(kind), fmt.Sprintf("%.4f", geoMean(ds)))
	}
	t.write(w)
	return nil
}
