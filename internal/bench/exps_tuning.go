package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/storage"
	"repro/internal/tile"
	"repro/internal/workload/tpch"
	"repro/internal/workload/yelp"
)

// Representative query subset for the tuning sweeps: the full set on
// every grid point would dominate runtime without changing the shape
// (Q1 scan-heavy, Q3/Q18 join-heavy, Q6 selective).
var sweepQueries = []int{1, 3, 6, 18}

func (c *Context) sweepGeoMean(rel storage.Relation) float64 {
	workers := c.Opts.workers()
	var ds []time.Duration
	for _, num := range sweepQueries {
		q, _ := tpch.QueryByNum(num)
		ds = append(ds, c.timeIt(func() { q.Run(rel, workers) }))
	}
	return geoMean(ds)
}

func tileSizes() []int { return []int{1 << 8, 1 << 10, 1 << 12, 1 << 14} }

// fig10 — Figure 10: shuffled-TPC-H geo-mean across tile sizes and
// partition sizes. More partitions = better reordering.
func fig10(w io.Writer, c *Context) error {
	parts := []int{1, 4, 8, 16}
	t := &table{header: append([]string{"tile size"}, partHeaders(parts)...)}
	lines := c.tpchShuffled()
	for _, ts := range tileSizes() {
		cells := []string{fmt.Sprintf("2^%d", log2(ts))}
		for _, ps := range parts {
			tcfg := tile.DefaultConfig()
			tcfg.TileSize = ts
			tcfg.PartitionSize = ps
			rel := c.loadTiles(lines, tcfg, ps > 1)
			cells = append(cells, fmt.Sprintf("%.4f", c.sweepGeoMean(rel)))
		}
		t.row(cells...)
	}
	t.write(w)
	return nil
}

func partHeaders(ps []int) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = fmt.Sprintf("part=%d", p)
	}
	return out
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// fig11 — Figure 11: loading time over the same grid.
func fig11(w io.Writer, c *Context) error {
	parts := []int{1, 4, 8, 16}
	t := &table{header: append([]string{"tile size"}, partHeaders(parts)...)}
	lines := c.tpchShuffled()
	for _, ts := range tileSizes() {
		cells := []string{fmt.Sprintf("2^%d", log2(ts))}
		for _, ps := range parts {
			tcfg := tile.DefaultConfig()
			tcfg.TileSize = ts
			tcfg.PartitionSize = ps
			d := c.timeIt(func() { c.loadTiles(lines, tcfg, ps > 1) })
			cells = append(cells, secs(d))
		}
		t.row(cells...)
	}
	t.write(w)
	return nil
}

// fig12 — Figure 12: Yelp geo-mean vs tile size (partition size 8).
func fig12(w io.Writer, c *Context) error {
	return tileSizeSweep(w, c, c.yelpLines(), func(rel storage.Relation) float64 {
		workers := c.Opts.workers()
		var ds []time.Duration
		for _, q := range yelp.Queries() {
			q := q
			ds = append(ds, c.timeIt(func() { q.Run(rel, workers) }))
		}
		return geoMean(ds)
	})
}

// fig13 — Figure 13: Twitter geo-mean vs tile size (partition size 8).
func fig13(w io.Writer, c *Context) error {
	return tileSizeSweep(w, c, c.twitterLines(false), func(rel storage.Relation) float64 {
		workers := c.Opts.workers()
		var ds []time.Duration
		for _, q := range twitterQueriesPlain() {
			run := q
			ds = append(ds, c.timeIt(func() { run(rel, workers) }))
		}
		return geoMean(ds)
	})
}

func tileSizeSweep(w io.Writer, c *Context, lines [][]byte, measure func(storage.Relation) float64) error {
	t := &table{header: []string{"tile size", "geo-mean (s)"}}
	for _, ts := range tileSizes() {
		tcfg := tile.DefaultConfig()
		tcfg.TileSize = ts
		rel := c.loadTiles(lines, tcfg, true)
		t.row(fmt.Sprintf("2^%d", log2(ts)), fmt.Sprintf("%.4f", measure(rel)))
	}
	t.write(w)
	return nil
}

// fig14 — Figure 14: optimization ablations. "no Date" disables
// timestamp extraction (§4.9), "no Skip" disables tile skipping
// (§4.8), "no Opt" disables both.
func fig14(w io.Writer, c *Context) error {
	workers := c.Opts.workers()
	levels := []struct {
		name        string
		dates, skip bool
	}{
		{"no Opt", false, false},
		{"no Date", false, true},
		{"no Skip", true, false},
		{"Tiles", true, true},
	}
	datasets := []struct {
		name  string
		lines [][]byte
		geo   func(storage.Relation) float64
	}{
		{"TPC-H", c.tpchLines(), c.sweepGeoMean},
		{"Shuffled", c.tpchShuffled(), c.sweepGeoMean},
		{"Yelp", c.yelpLines(), func(rel storage.Relation) float64 {
			var ds []time.Duration
			for _, q := range yelp.Queries() {
				q := q
				ds = append(ds, c.timeIt(func() { q.Run(rel, workers) }))
			}
			return geoMean(ds)
		}},
	}
	t := &table{header: []string{"dataset", "no Opt", "no Date", "no Skip", "Tiles"}}
	for _, ds := range datasets {
		cells := []string{ds.name}
		for _, lv := range levels {
			cfg := c.loaderConfig()
			cfg.Tile.DetectDates = lv.dates
			cfg.SkipTiles = lv.skip
			l, _ := storage.NewLoader(storage.KindTiles, cfg)
			rel, err := l.Load("ablate", ds.lines, workers)
			if err != nil {
				return err
			}
			cells = append(cells, fmt.Sprintf("%.4f", ds.geo(rel)))
		}
		t.row(cells...)
	}
	t.write(w)
	return nil
}
