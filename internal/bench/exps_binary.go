package bench

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/bson"
	"repro/internal/cbor"
	"repro/internal/jsonb"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/keypath"
	"repro/internal/workload/simdjsonfiles"
)

// The §6.9 experiments compare the three binary formats on documents
// with the shapes of the SIMD-JSON repository files.

func (c *Context) fileDoc(name string) jsonvalue.Value {
	return cached(c, "simdjson-"+name, func() jsonvalue.Value {
		return simdjsonfiles.MustGenerate(name, 1, 99)
	})
}

// fig18 — Figure 18: (de)serialization slowdown of BSON and CBOR
// relative to JSONB (values > 1 mean slower than JSONB).
func fig18(w io.Writer, c *Context) error {
	fmt.Fprintln(w, "serialize (slowdown vs JSONB)")
	ts := &table{header: []string{"file", "BSON", "CBOR"}}
	td := &table{header: []string{"file", "BSON", "CBOR"}}
	for _, name := range simdjsonfiles.Names() {
		doc := c.fileDoc(name)
		var enc jsonb.Encoder
		jb := c.timeIt(func() { enc.Encode(doc) })
		bs := c.timeIt(func() { bson.Marshal(doc) })
		cb := c.timeIt(func() { cbor.Marshal(doc) })
		ts.row(name, ratio(bs, jb), ratio(cb, jb))

		jbBuf := enc.Encode(doc)
		bsBuf := bson.Marshal(doc)
		cbBuf := cbor.Marshal(doc)
		jbD := c.timeIt(func() { jsonb.NewDoc(jbBuf).Decode() })
		bsD := c.timeIt(func() {
			if _, err := bson.Unmarshal(bsBuf); err != nil {
				panic(err)
			}
		})
		cbD := c.timeIt(func() {
			if _, err := cbor.Unmarshal(cbBuf); err != nil {
				panic(err)
			}
		})
		td.row(name, ratio(bsD, jbD), ratio(cbD, jbD))
	}
	ts.write(w)
	fmt.Fprintln(w, "\ndeserialize (slowdown vs JSONB)")
	td.write(w)
	return nil
}

func ratio(a, b interface{ Seconds() float64 }) string {
	bs := b.Seconds()
	if bs == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", a.Seconds()/bs)
}

// fig19 — Figure 19: encoded size relative to the JSON text.
func fig19(w io.Writer, c *Context) error {
	t := &table{header: []string{"file", "JSON(B)", "BSON", "CBOR", "JSONB"}}
	for _, name := range simdjsonfiles.Names() {
		doc := c.fileDoc(name)
		text := len(jsontext.Serialize(doc))
		bs := len(bson.Marshal(doc))
		cb := len(cbor.Marshal(doc))
		jb := len(jsonb.Encode(doc))
		rel := func(n int) string { return fmt.Sprintf("%.2f", float64(n)/float64(text)) }
		t.row(name, fmt.Sprintf("%d", text), rel(bs), rel(cb), rel(jb))
	}
	t.write(w)
	return nil
}

// fig20 — Figure 20: random accesses per second. Each access follows a
// randomly chosen leaf path collected from the document, exercising
// nested lookups: binary search per level for JSONB, linear scans for
// BSON, sequential decode for CBOR.
func fig20(w io.Writer, c *Context) error {
	t := &table{header: []string{"file", "BSON acc/s", "CBOR acc/s", "JSONB acc/s"}}
	for _, name := range simdjsonfiles.Names() {
		doc := c.fileDoc(name)
		paths := samplePaths(doc, 64)
		if len(paths) == 0 {
			t.row(name, "-", "-", "-")
			continue
		}
		jbBuf := jsonb.Encode(doc)
		bsBuf := bson.Marshal(doc)
		cbBuf := cbor.Marshal(doc)

		perAccess := func(fn func(p []pathStep)) string {
			const rounds = 200
			d := c.timeIt(func() {
				for i := 0; i < rounds; i++ {
					fn(paths[i%len(paths)])
				}
			})
			if d <= 0 {
				return "inf"
			}
			return fmt.Sprintf("%.0f", float64(rounds)/d.Seconds())
		}

		bsCol := perAccess(func(p []pathStep) { bsonAccess(bsBuf, p) })
		cbCol := perAccess(func(p []pathStep) { cborAccess(cbBuf, p) })
		jbCol := perAccess(func(p []pathStep) { jsonbAccess(jbBuf, p) })
		t.row(name, bsCol, cbCol, jbCol)
	}
	t.write(w)
	return nil
}

// pathStep mirrors keypath segments for the raw-format lookups.
type pathStep struct {
	key   string
	index int
	isIdx bool
}

func samplePaths(doc jsonvalue.Value, n int) [][]pathStep {
	var all [][]pathStep
	keypath.Collect(doc, 16, func(p keypath.Path, _ keypath.ValueType, _ jsonvalue.Value) {
		steps := make([]pathStep, len(p.Segs))
		for i, s := range p.Segs {
			steps[i] = pathStep{key: s.Key, index: s.Index, isIdx: s.IsIndex}
		}
		all = append(all, steps)
	})
	if len(all) == 0 {
		return nil
	}
	r := rand.New(rand.NewSource(5))
	r.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

func jsonbAccess(buf []byte, steps []pathStep) bool {
	cur := jsonb.NewDoc(buf)
	for _, s := range steps {
		var ok bool
		if s.isIdx {
			cur, ok = cur.Index(s.index)
		} else {
			cur, ok = cur.Get(s.key)
		}
		if !ok {
			return false
		}
	}
	return true
}

func bsonAccess(buf []byte, steps []pathStep) bool {
	// BSON arrays are documents with decimal-string keys.
	keys := make([]string, len(steps))
	for i, s := range steps {
		if s.isIdx {
			keys[i] = fmt.Sprintf("%d", s.index)
		} else {
			keys[i] = s.key
		}
	}
	_, ok := bson.LookupPath(buf, keys...)
	return ok
}

func cborAccess(buf []byte, steps []pathStep) bool {
	// CBOR arrays need positional skipping; reuse LookupPath for maps
	// and decode arrays via Unmarshal fallback when an index step is
	// hit (the extraction cost the paper describes).
	keys := make([]string, 0, len(steps))
	for i, s := range steps {
		if s.isIdx {
			// Decode the remaining subtree and walk it.
			var v jsonvalue.Value
			var ok bool
			if len(keys) > 0 {
				v, ok = cbor.LookupPath(buf, keys...)
			} else {
				var err error
				v, err = cbor.Unmarshal(buf)
				ok = err == nil
			}
			if !ok {
				return false
			}
			return walkValue(v, steps[i:])
		}
		keys = append(keys, s.key)
	}
	_, ok := cbor.LookupPath(buf, keys...)
	return ok
}

func walkValue(v jsonvalue.Value, steps []pathStep) bool {
	cur := v
	for _, s := range steps {
		if s.isIdx {
			if cur.Kind() != jsonvalue.KindArray || s.index >= cur.Len() {
				return false
			}
			cur = cur.Elem(s.index)
		} else {
			var ok bool
			cur, ok = cur.Lookup(s.key)
			if !ok {
				return false
			}
		}
	}
	return true
}
