package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/exprparse"
	"repro/internal/storage"
	"repro/internal/tile"
	"repro/internal/workload/tpch"
	"repro/internal/workload/twitter"
)

func twitterQueriesPlain() []func(storage.Relation, int) *engine.Result {
	var out []func(storage.Relation, int) *engine.Result
	for _, q := range twitter.Queries() {
		out = append(out, q.Run)
	}
	return out
}

// tpchSpans returns the per-table spans of the combined generation
// (regenerated deterministically; generation is cheap relative to
// loading).
func (c *Context) tpchSpans() map[string][2]int {
	return cached(c, "tpch-spans", func() map[string][2]int {
		_, spans := tpch.Generate(tpch.Config{ScaleFactor: c.Opts.Scale, Seed: 42})
		return spans
	})
}

func (c *Context) lineitemLines() [][]byte {
	return cached(c, "tpch-lineitem", func() [][]byte {
		spans := c.tpchSpans()
		lines := c.tpchLines()
		sp := spans["lineitem"]
		return lines[sp[0]:sp[1]]
	})
}

// sumLinenumber is the §6.7 micro benchmark: SELECT sum(l_linenumber).
func sumLinenumber(rel storage.Relation, workers int) *engine.Result {
	scan := engine.NewScan(rel, []storage.Access{
		exprparse.MustParse(`data->>'l_linenumber'::BigInt`),
	}, nil, nil)
	gb := engine.NewGroupBy(scan, nil, nil,
		[]engine.AggSpec{{Func: engine.Sum, Arg: expr.NewCol(0, expr.TBigInt), Name: "sum"}})
	return engine.Materialize(gb, workers)
}

// relationalBaseline is the pure relational comparison row: the
// linenumber column extracted once into a native int64 slice, scanned
// without any JSON machinery.
type relationalBaseline struct {
	vals []int64
}

func (c *Context) relational() *relationalBaseline {
	return cached(c, "relational-lineitem", func() *relationalBaseline {
		rel := c.relation("tpch-lineitem-jsonb", storage.KindJSONB, c.lineitemLines)
		rb := &relationalBaseline{}
		scan := engine.NewScan(rel, []storage.Access{
			exprparse.MustParse(`data->>'l_linenumber'::BigInt`),
		}, nil, nil)
		scan.Run(1, func(_ int, row []expr.Value) {
			rb.vals = append(rb.vals, row[0].I)
		})
		return rb
	})
}

func (rb *relationalBaseline) sum() int64 {
	var total int64
	for _, v := range rb.vals {
		total += v
	}
	return total
}

// fig15 — Figure 15: summation-query throughput. "Comb." rows use the
// combined TPC-H collection (the summation must wade through foreign
// documents, or skip their tiles); "Only" rows use a pure lineitem
// collection. The relational row cannot use combined data (it has a
// schema).
func fig15(w io.Writer, c *Context) error {
	workers := c.Opts.workers()
	t := &table{header: []string{"system", "queries/sec", "seconds"}}

	rb := c.relational()
	d := c.timeIt(func() { _ = rb.sum() })
	t.row("Relational", qps(d), secs(d))

	type row struct {
		name string
		kind storage.FormatKind
		comb bool
	}
	rows := []row{
		{"JSON Comb.", storage.KindJSON, true},
		{"JSONB Comb.", storage.KindJSONB, true},
		{"Sinew Only", storage.KindSinew, false},
		{"Sinew Comb.", storage.KindSinew, true},
		{"Tiles Only", storage.KindTiles, false},
		{"Tiles Comb.", storage.KindTiles, true},
	}
	for _, r := range rows {
		var rel storage.Relation
		if r.comb {
			rel = c.tpchRel(r.kind)
		} else {
			rel = c.relation("tpch-lineitem", r.kind, c.lineitemLines)
		}
		d := c.timeIt(func() { sumLinenumber(rel, workers) })
		t.row(r.name, qps(d), secs(d))
	}
	t.write(w)
	return nil
}

// tab5 — Table 5: per-tuple costs of the summation query. Hardware
// counters (cycles, L1 misses) are not portably available; the
// substitution reports wall nanoseconds per tuple, which preserves the
// claim under test — the small static overhead of Tiles vs Sinew vs
// pure relational.
func tab5(w io.Writer, c *Context) error {
	workers := 1 // per-tuple costs are measured single-threaded
	nLineitem := len(c.lineitemLines())
	nAll := len(c.tpchLines())
	t := &table{header: []string{"system", "ns/tuple", "sec/query", "tuples"}}

	rb := c.relational()
	d := c.timeIt(func() { _ = rb.sum() })
	t.row("Relational", perTuple(d, nLineitem), secs(d), fmt.Sprintf("%d", nLineitem))

	rows := []struct {
		name string
		kind storage.FormatKind
		comb bool
	}{
		{"Tiles", storage.KindTiles, false},
		{"Sinew", storage.KindSinew, false},
		{"Sinew Comb.", storage.KindSinew, true},
		{"Tiles Comb.", storage.KindTiles, true},
	}
	for _, r := range rows {
		var rel storage.Relation
		n := nLineitem
		if r.comb {
			rel = c.tpchRel(r.kind)
			n = nAll
		} else {
			rel = c.relation("tpch-lineitem", r.kind, c.lineitemLines)
		}
		d := c.timeIt(func() { sumLinenumber(rel, workers) })
		t.row(r.name, perTuple(d, n), secs(d), fmt.Sprintf("%d", n))
	}
	t.write(w)
	return nil
}

func perTuple(d time.Duration, n int) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/float64(n))
}

// fig16 — Figure 16: insertion-time breakdown for tile construction
// (extract / mining / reordering / write JSONB).
func fig16(w io.Writer, c *Context) error {
	workers := c.Opts.workers()
	datasets := []struct {
		name  string
		lines [][]byte
	}{
		{"TPC-H", c.tpchLines()},
		{"Shuffled", c.tpchShuffled()},
		{"Yelp", c.yelpLines()},
		{"Twitter", c.twitterLines(false)},
		{"Changing", c.twitterLines(true)},
	}
	t := &table{header: []string{"dataset", "Extract", "Mining", "Reordering", "WriteJSONB"}}
	for _, ds := range datasets {
		var m tile.Metrics
		l := storage.NewTilesLoader(c.loaderConfig(), &m)
		if _, err := l.Load(ds.name, ds.lines, workers); err != nil {
			return err
		}
		ext := float64(m.ExtractNanos.Load())
		mine := float64(m.MineNanos.Load())
		reord := float64(m.ReorderNanos.Load())
		wj := float64(m.WriteJSONBNanos.Load())
		total := ext + mine + reord + wj
		if total == 0 {
			total = 1
		}
		pct := func(v float64) string { return fmt.Sprintf("%.0f%%", v/total*100) }
		t.row(ds.name, pct(ext), pct(mine), pct(reord), pct(wj))
	}
	t.write(w)
	return nil
}

// fig17 — Figure 17: parallel loading throughput (1000 tuples/sec).
func fig17(w io.Writer, c *Context) error {
	workers := c.Opts.workers()
	datasets := []struct {
		name  string
		lines [][]byte
	}{
		{"TPC-H", c.tpchLines()},
		{"Yelp", c.yelpLines()},
		{"Twitter", c.twitterLines(false)},
		{"Changing", c.twitterLines(true)},
	}
	t := &table{header: append([]string{"dataset"}, formatHeaders(internalFormats)...)}
	for _, ds := range datasets {
		cells := []string{ds.name}
		for _, kind := range internalFormats {
			l, _ := storage.NewLoader(kind, c.loaderConfig())
			d := c.timeIt(func() {
				if _, err := l.Load(ds.name, ds.lines, workers); err != nil {
					panic(err)
				}
			})
			ktps := float64(len(ds.lines)) / d.Seconds() / 1000
			cells = append(cells, fmt.Sprintf("%.0f", ktps))
		}
		t.row(cells...)
	}
	t.write(w)
	return nil
}

// tab6 — Table 6: storage sizes. "+Tiles" is the materialized-column
// overhead on top of the binary JSON; "+LZ4-Tiles" compresses the
// columnar extracts.
func tab6(w io.Writer, c *Context) error {
	datasets := []struct {
		name  string
		lines [][]byte
		rel   func() storage.Relation
	}{
		{"TPC-H", c.tpchLines(), func() storage.Relation { return c.tpchRel(storage.KindTiles) }},
		{"Yelp", c.yelpLines(), func() storage.Relation { return c.yelpRel(storage.KindTiles) }},
		{"Twitter", c.twitterLines(false), func() storage.Relation { return c.twitterRel(storage.KindTiles) }},
	}
	t := &table{header: []string{"dataset", "JSON", "JSONB", "+Tiles", "+LZ4-Tiles"}}
	for _, ds := range datasets {
		jsonSize := 0
		for _, l := range ds.lines {
			jsonSize += len(l)
		}
		tr := ds.rel().(interface {
			RawSizeBytes() int
			ColumnSizeBytes() int
			CompressedColumnSizeBytes() int
		})
		jsonb := tr.RawSizeBytes()
		tiles := tr.ColumnSizeBytes()
		lz4c := tr.CompressedColumnSizeBytes()
		mb := func(b int) string { return fmt.Sprintf("%.2f", float64(b)/1e6) }
		pct := func(b int) string { return fmt.Sprintf("%s (%.0f%%)", mb(b), float64(b)/float64(jsonb)*100) }
		t.row(ds.name, mb(jsonSize), mb(jsonb), pct(tiles), pct(lz4c))
	}
	t.write(w)
	return nil
}
