package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/exprparse"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/tile"
)

// dictBenchFile is where the dict experiment records its measurements
// (committed as the dictionary-encoding baseline).
const dictBenchFile = "BENCH_dict.json"

// dictResult is one query's arena-vs-dictionary measurement.
type dictResult struct {
	Query      string  `json:"query"`
	ArenaSecs  float64 `json:"arena_secs"`
	DictSecs   float64 `json:"dict_secs"`
	Speedup    float64 `json:"speedup"`
	RowsPerSec float64 `json:"dict_rows_per_sec"`
}

type dictReport struct {
	Workload    string       `json:"workload"`
	Rows        int          `json:"rows"`
	Workers     int          `json:"workers"`
	DictColumns int64        `json:"dict_columns_built"`
	Results     []dictResult `json:"results"`
	// Metrics is the process-wide instrument delta over the experiment.
	Metrics obs.Snapshot `json:"metrics"`
}

// dictLogLines synthesizes a log-analytics workload dominated by
// low-cardinality strings — the shape dictionary encoding targets:
// level (4 values), service (12), region (6), a medium-cardinality
// user id, and a high-cardinality message that must stay in the arena.
func (c *Context) dictLogLines() [][]byte {
	return cached(c, "dict-log-lines", func() [][]byte {
		levels := []string{"debug", "info", "warn", "error"}
		services := []string{"api", "auth", "billing", "cache", "cart", "db",
			"email", "gateway", "search", "ship", "web", "worker"}
		regions := []string{"ap-1", "eu-1", "eu-2", "us-1", "us-2", "us-3"}
		n := imax(40000, int(4_000_000*c.Opts.Scale))
		lines := make([][]byte, n)
		for i := 0; i < n; i++ {
			lines[i] = []byte(fmt.Sprintf(
				`{"level":"%s","service":"%s","region":"%s","user":"u%04d","latency_us":%d,"msg":"request %d finished with code %d"}`,
				levels[(i*7)%len(levels)], services[(i*13)%len(services)],
				regions[(i*5)%len(regions)], (i*31)%997, (i*97)%250000, i, 200+(i%3)*100))
		}
		return lines
	})
}

// dictQueries are the measured pipelines: string-predicate scans (EQ,
// LIKE, IN) and low-cardinality GROUP BYs, all over text columns that
// dictionary-encode under the default threshold.
func dictQueries() []struct {
	name string
	run  func(rel storage.Relation, workers int)
} {
	accs := func() []storage.Access {
		return []storage.Access{
			exprparse.MustParse(`data->>'level'`),
			exprparse.MustParse(`data->>'service'`),
			exprparse.MustParse(`data->>'user'`),
			exprparse.MustParse(`data->>'latency_us'::BigInt`),
		}
	}
	return []struct {
		name string
		run  func(rel storage.Relation, workers int)
	}{
		{"filter-eq", func(rel storage.Relation, workers int) {
			f := expr.NewCmp(expr.EQ, expr.NewCol(0, expr.TText),
				expr.NewConst(expr.TextValue("error")))
			engine.CountRows(engine.NewScan(rel, accs(), nil, f), workers)
		}},
		{"filter-like", func(rel storage.Relation, workers int) {
			f := expr.NewLike(expr.NewCol(1, expr.TText), "%a%")
			engine.CountRows(engine.NewScan(rel, accs(), nil, f), workers)
		}},
		{"filter-in", func(rel storage.Relation, workers int) {
			f := expr.NewIn(expr.NewCol(1, expr.TText),
				expr.TextValue("api"), expr.TextValue("db"), expr.TextValue("web"))
			engine.CountRows(engine.NewScan(rel, accs(), nil, f), workers)
		}},
		{"groupby-level", func(rel storage.Relation, workers int) {
			gb := engine.NewGroupBy(engine.NewScan(rel, accs(), nil, nil),
				[]expr.Expr{expr.NewCol(0, expr.TText)}, []string{"level"},
				[]engine.AggSpec{
					{Func: engine.CountStar, Name: "n"},
					{Func: engine.Sum, Arg: expr.NewCol(3, expr.TBigInt), Name: "lat"},
				})
			engine.Materialize(gb, workers)
		}},
		{"groupby-user", func(rel storage.Relation, workers int) {
			gb := engine.NewGroupBy(engine.NewScan(rel, accs(), nil, nil),
				[]expr.Expr{expr.NewCol(2, expr.TText)}, []string{"user"},
				[]engine.AggSpec{{Func: engine.CountStar, Name: "n"}})
			engine.Materialize(gb, workers)
		}},
	}
}

// dictExp — dictionary-encoded vs arena string columns: the same
// document set loaded twice (DictThreshold 0 disables encoding), the
// same pipelines over both, recording the baseline to BENCH_dict.json.
func dictExp(w io.Writer, c *Context) error {
	workers := c.Opts.workers()
	metricsBase := obs.Default.Snapshot()
	lines := c.dictLogLines()

	arenaCfg := tile.DefaultConfig()
	arenaCfg.DictThreshold = 0
	arenaRel := c.loadTiles(lines, arenaCfg, true)

	base := obs.Default.Snapshot()
	dictRel := c.loadTiles(lines, tile.DefaultConfig(), true)
	built := obs.Default.Snapshot().Diff(base).Get("dict_columns_built")
	if built == 0 {
		return fmt.Errorf("dict experiment built no dictionary columns")
	}

	report := dictReport{Workload: "synthetic-logs", Rows: dictRel.NumRows(),
		Workers: workers, DictColumns: built}
	t := &table{header: []string{"query", "arena s", "dict s", "speedup"}}
	for _, q := range dictQueries() {
		arenaD := c.timeIt(func() { q.run(arenaRel, workers) })
		dictD := c.timeIt(func() { q.run(dictRel, workers) })
		speedup := arenaD.Seconds() / dictD.Seconds()
		t.row(q.name, secs(arenaD), secs(dictD), fmt.Sprintf("%.1fx", speedup))
		report.Results = append(report.Results, dictResult{
			Query:     q.name,
			ArenaSecs: arenaD.Seconds(),
			DictSecs:  dictD.Seconds(),
			Speedup:   speedup,
			RowsPerSec: float64(dictRel.NumRows()) /
				maxf(dictD.Seconds(), 1e-9),
		})
	}
	t.write(w)

	report.Metrics = obs.Default.Snapshot().Diff(metricsBase)
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	path := filepath.Join(c.Opts.OutDir, dictBenchFile)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline written to %s\n", path)
	return nil
}
