package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/bufpool"
	"repro/internal/obs"
	"repro/internal/storage"
)

// compactBenchFile is where the compact experiment records its
// measurements (committed next to EXPERIMENTS.md as the multi-segment
// baseline).
const compactBenchFile = "BENCH_compact.json"

// compactBatch is one incremental load step: the cost of appending
// the batch to a multi-segment directory (one new segment + manifest
// commit — O(new data)) against the monolithic baseline of rewriting
// the whole table into a single segment file (O(table so far)).
type compactBatch struct {
	Batch       int     `json:"batch"`
	BatchRows   int     `json:"batch_rows"`
	TableRows   int     `json:"table_rows"`
	AppendSecs  float64 `json:"append_secs"`
	RewriteSecs float64 `json:"rewrite_secs"`
	Segments    int     `json:"segments_live"`
}

type compactQuery struct {
	Query       string  `json:"query"`
	BeforeSecs  float64 `json:"before_secs"`
	AfterSecs   float64 `json:"after_secs"`
	AfterBefore float64 `json:"after_vs_before"`
}

type compactReport struct {
	Workload         string         `json:"workload"`
	Rows             int            `json:"rows"`
	Workers          int            `json:"workers"`
	Batches          []compactBatch `json:"batches"`
	AppendTotalSecs  float64        `json:"append_total_secs"`
	RewriteTotalSecs float64        `json:"rewrite_total_secs"`
	Queries          []compactQuery `json:"queries"`
	SegmentsBefore   int            `json:"segments_before"`
	SegmentsAfter    int            `json:"segments_after"`
	CompactionRounds int            `json:"compaction_rounds"`
	CompactionsRun   int64          `json:"compactions_run"`
	BytesRewritten   int64          `json:"compaction_bytes_rewritten"`
	DirBytes         int            `json:"dir_bytes"`
	// Metrics is the process-wide instrument delta over the experiment.
	Metrics obs.Snapshot `json:"metrics"`
}

// compactExp — multi-segment tables: lineitem is loaded in 8
// incremental batches. Each batch is (a) appended to a DirTable as one
// new segment plus a manifest commit, and (b) for the baseline,
// rewritten together with everything before it into a fresh
// single-file segment — the cost a monolithic format pays for the same
// ingest. Then the vec query pipelines run over the 8-segment table,
// Compact() folds the segments, and the same queries run again.
// Records the baseline to BENCH_compact.json.
func compactExp(w io.Writer, c *Context) error {
	const numBatches = 8
	workers := c.Opts.workers()
	metricsBase := obs.Default.Snapshot()
	lines := c.lineitemLines()

	root, err := os.MkdirTemp("", "jtbench-compact")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	dt, err := storage.OpenDirTable("lineitem", filepath.Join(root, "lineitem.jt"),
		bufpool.New(1<<30), c.loaderConfig(), 0, false)
	if err != nil {
		return err
	}
	defer dt.Close()

	// Appends mutate the table, so the timed repetitions go to a
	// scratch directory (append cost depends only on the batch, never
	// on what the directory already holds); the real append below runs
	// once, untimed.
	scratch, err := storage.OpenDirTable("scratch", filepath.Join(root, "scratch.jt"),
		bufpool.New(0), c.loaderConfig(), 0, false)
	if err != nil {
		return err
	}
	defer scratch.Close()

	loader, err := storage.NewLoader(storage.KindTiles, c.loaderConfig())
	if err != nil {
		return err
	}
	buildBatch := func(batchLines [][]byte) storage.Relation {
		rel, err := loader.Load("batch", batchLines, workers)
		if err != nil {
			panic(err)
		}
		return rel
	}

	report := compactReport{Workload: "tpch-lineitem", Rows: len(lines), Workers: workers}
	bt := &table{header: []string{"batch", "rows", "table rows", "append s", "rewrite s", "segments"}}
	per := (len(lines) + numBatches - 1) / numBatches
	var cumulative [][]byte
	for b := 0; b < numBatches; b++ {
		lo, hi := b*per, (b+1)*per
		if hi > len(lines) {
			hi = len(lines)
		}
		batchLines := lines[lo:hi]
		cumulative = append(cumulative, batchLines...)

		// Incremental append: build the batch's tiles (excluded from the
		// timing — both sides pay it), then time segment write + manifest
		// commit.
		rel := buildBatch(batchLines)
		ti := rel.(storage.TileIntrospector)
		appendD := c.timeIt(func() {
			if err := scratch.AppendTiles(ti.Tiles(), rel.Stats()); err != nil {
				panic(err)
			}
		})
		if err := dt.AppendTiles(ti.Tiles(), rel.Stats()); err != nil {
			return err
		}

		// Monolithic baseline: rewrite everything so far as one file.
		full := buildBatch(cumulative)
		rewriteD := c.timeIt(func() {
			path := filepath.Join(root, "mono.seg")
			if err := storage.WriteSegmentFile(path, full); err != nil {
				panic(err)
			}
		})

		row := compactBatch{
			Batch: b + 1, BatchRows: len(batchLines), TableRows: len(cumulative),
			AppendSecs: appendD.Seconds(), RewriteSecs: rewriteD.Seconds(),
			Segments: dt.NumSegments(),
		}
		report.Batches = append(report.Batches, row)
		report.AppendTotalSecs += row.AppendSecs
		report.RewriteTotalSecs += row.RewriteSecs
		bt.row(fmt.Sprint(row.Batch), fmt.Sprint(row.BatchRows), fmt.Sprint(row.TableRows),
			secs(appendD), secs(rewriteD), fmt.Sprint(row.Segments))
	}
	bt.write(w)
	fmt.Fprintf(w, "append total %.4fs vs monolithic rewrite total %.4fs (%.1fx)\n\n",
		report.AppendTotalSecs, report.RewriteTotalSecs,
		report.RewriteTotalSecs/maxf(report.AppendTotalSecs, 1e-9))

	// Queries over the fragmented table, then compaction, then the same
	// queries over the folded table.
	report.SegmentsBefore = dt.NumSegments()
	qt := &table{header: []string{"query", "fragmented s", "compacted s", "ratio"}}
	type qd struct{ before float64 }
	beforeTimes := map[string]qd{}
	for _, q := range vecQueries() {
		d := c.timeIt(func() { q.run(dt, workers) })
		beforeTimes[q.name] = qd{before: d.Seconds()}
	}

	runs0, bytes0 := obs.CompactionsRun.Load(), obs.CompactionBytesRewritten.Load()
	rounds, err := dt.Compact()
	if err != nil {
		return err
	}
	report.CompactionRounds = rounds
	report.CompactionsRun = obs.CompactionsRun.Load() - runs0
	report.BytesRewritten = obs.CompactionBytesRewritten.Load() - bytes0
	report.SegmentsAfter = dt.NumSegments()
	report.DirBytes = dt.SizeBytes()

	for _, q := range vecQueries() {
		d := c.timeIt(func() { q.run(dt, workers) })
		before := beforeTimes[q.name].before
		ratio := d.Seconds() / maxf(before, 1e-9)
		qt.row(q.name, fmt.Sprintf("%.4f", before), secs(d), fmt.Sprintf("%.2fx", ratio))
		report.Queries = append(report.Queries, compactQuery{
			Query: q.name, BeforeSecs: before, AfterSecs: d.Seconds(), AfterBefore: ratio,
		})
	}
	qt.write(w)
	fmt.Fprintf(w, "segments %d -> %d in %d rounds (%d merges, %d B rewritten), dir %d B\n",
		report.SegmentsBefore, report.SegmentsAfter, report.CompactionRounds,
		report.CompactionsRun, report.BytesRewritten, report.DirBytes)

	report.Metrics = obs.Default.Snapshot().Diff(metricsBase)
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	path := filepath.Join(c.Opts.OutDir, compactBenchFile)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline written to %s\n", path)
	return nil
}
