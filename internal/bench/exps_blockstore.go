package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/blockstore"
	"repro/internal/expr"
	"repro/internal/keypath"
	"repro/internal/obs"
	"repro/internal/storage"
)

// blockstoreBenchFile records the remote-scan comparison (committed
// next to EXPERIMENTS.md as the storage/compute-separation baseline).
const blockstoreBenchFile = "BENCH_blockstore.json"

// blockstorePoint is one cold scan of the same table through the
// counting fake-S3 store, under one coalescing/readahead setting.
type blockstorePoint struct {
	// Mode is "naive" (coalescing disabled: one request per block) or
	// "coalesced" (default gap merging plus tile readahead).
	Mode string  `json:"mode"`
	Secs float64 `json:"secs"`
	// Store-side request accounting (the fake's own counters).
	RangeReads int64 `json:"range_reads"`
	BytesRead  int64 `json:"bytes_read"`
	// Scan-side accounting (obs.ScanStats of the measured scan).
	Coalesced    int64 `json:"coalesced"`
	PrefetchHits int64 `json:"prefetch_hits"`
	TilesScanned int64 `json:"tiles_scanned"`
	TilesSkipped int64 `json:"tiles_skipped"`
	Rows         int64 `json:"rows"`
}

type blockstoreReport struct {
	Workload string `json:"workload"`
	Docs     int    `json:"docs"`
	Segments int    `json:"segments"`
	NumCPU   int    `json:"numcpu"`
	Workers  int    `json:"workers"`
	// LatencyMicros is the simulated per-request round trip.
	LatencyMicros int64             `json:"latency_micros"`
	Points        []blockstorePoint `json:"points"`
	// CoalesceFactor is naive range reads over coalesced range reads —
	// how many object-store requests the gap merging saves on this
	// tile-skipping scan. The CI gate requires a floor on this.
	CoalesceFactor float64 `json:"coalesce_factor"`
	// Speedup is naive seconds over coalesced seconds at the simulated
	// latency: the wall-clock payoff of the saved round trips.
	Speedup float64 `json:"speedup"`
}

// blockstoreLines generates twitter-like documents whose geo tags only
// appear in the later half of the batches — the seen-path tile index
// proves the early segments irrelevant to a geo-filtered scan (§4.8),
// and the surviving tiles each touch several column blocks, which is
// what read coalescing merges.
func blockstoreLines(batch, n int) [][]byte {
	lines := make([][]byte, n)
	for i := 0; i < n; i++ {
		id := batch*n + i
		if batch%2 == 1 {
			lines[i] = []byte(fmt.Sprintf(
				`{"id":%d,"text":"tweet-%d","user":{"id":%d},"replies":%d,"retweets":%d,"favorites":%d,"geo":{"lat":%g,"lon":%g}}`,
				id, id, id%97, id%13, id%7, id%29, float64(id%180), float64(id%360)))
			continue
		}
		lines[i] = []byte(fmt.Sprintf(
			`{"id":%d,"text":"tweet-%d","user":{"id":%d},"replies":%d,"retweets":%d,"favorites":%d}`,
			id, id, id%97, id%13, id%7, id%29))
	}
	return lines
}

// blockstoreAccesses is the geo-filtered projection: six column reads
// plus the null-rejecting geo access driving tile skipping.
func blockstoreAccesses() []storage.Access {
	geo := storage.NewAccessPath(expr.TFloat, keypath.NewPath("geo", "lat"))
	geo.NullRejecting = true
	return []storage.Access{
		storage.NewAccessPath(expr.TBigInt, keypath.NewPath("id")),
		storage.NewAccessPath(expr.TBigInt, keypath.NewPath("user", "id")),
		storage.NewAccessPath(expr.TBigInt, keypath.NewPath("replies")),
		storage.NewAccessPath(expr.TBigInt, keypath.NewPath("retweets")),
		storage.NewAccessPath(expr.TBigInt, keypath.NewPath("favorites")),
		storage.NewAccessPath(expr.TText, keypath.NewPath("text")),
		geo,
	}
}

// blockstoreTable builds a multi-segment table on the fake store, one
// segment per batch.
func blockstoreTable(c *Context, fake *blockstore.FakeS3, batches, rows int) (int, error) {
	cfg := storage.DefaultLoaderConfig()
	cfg.Metrics = c.Metrics
	dt, err := storage.OpenDirStore("bench", fake, nil, cfg, 0, false)
	if err != nil {
		return 0, err
	}
	defer dt.Close()
	docs := 0
	for b := 0; b < batches; b++ {
		lines := blockstoreLines(b, rows)
		docs += len(lines)
		l, err := storage.NewLoader(storage.KindTiles, cfg)
		if err != nil {
			return 0, err
		}
		rel, err := l.Load("bench", lines, c.Opts.workers())
		if err != nil {
			return 0, err
		}
		if err := dt.AppendTiles(rel.(storage.TileIntrospector).Tiles(), rel.Stats()); err != nil {
			return 0, err
		}
	}
	return docs, nil
}

// blockstoreScan opens the table cold (fresh buffer pool) with the
// given coalescing gap and scans it once, returning the measured point.
func blockstoreScan(c *Context, fake *blockstore.FakeS3, mode string, gap int64, prefetch bool) (blockstorePoint, error) {
	cfg := storage.DefaultLoaderConfig()
	cfg.StoreGapBytes = gap
	cfg.StorePrefetch = prefetch
	dt, err := storage.OpenDirStore("bench", fake, nil, cfg, 0, false)
	if err != nil {
		return blockstorePoint{}, err
	}
	defer dt.Close()

	accesses := blockstoreAccesses()
	readsBefore, bytesBefore := fake.RangeReadCount(), fake.BytesRead()
	var st obs.ScanStats
	var rows int64
	start := time.Now()
	dt.ScanWithStats(context.Background(), accesses, c.Opts.workers(),
		func(w int, row []expr.Value) {}, &st)
	secs := time.Since(start).Seconds()
	if err := dt.Err(); err != nil {
		return blockstorePoint{}, fmt.Errorf("%s scan degraded: %w", mode, err)
	}
	rows = st.RowsScanned.Load()
	return blockstorePoint{
		Mode: mode, Secs: secs,
		RangeReads:   fake.RangeReadCount() - readsBefore,
		BytesRead:    fake.BytesRead() - bytesBefore,
		Coalesced:    st.StoreCoalesced.Load(),
		PrefetchHits: st.StorePrefetchHits.Load(),
		TilesScanned: st.TilesScanned.Load(),
		TilesSkipped: st.TilesSkipped.Load(),
		Rows:         rows,
	}, nil
}

// blockstoreExp — remote scans through the fake object store: the
// same geo-filtered projection with coalescing disabled (one request
// per block) vs the default gap merging plus readahead, recording
// BENCH_blockstore.json. The interesting number is requests saved:
// with per-request latency dominating, wall time follows directly.
func blockstoreExp(w io.Writer, c *Context) error {
	const latency = 500 * time.Microsecond
	fake := blockstore.NewFakeS3(nil, blockstore.FakeS3Config{Latency: latency})
	batches := imax(4, int(8*c.Opts.Scale/0.01))
	docs, err := blockstoreTable(c, fake, batches, 2000)
	if err != nil {
		return err
	}
	report := blockstoreReport{
		Workload: "twitter-evolving", Docs: docs, Segments: batches,
		NumCPU: runtime.NumCPU(), Workers: c.Opts.workers(),
		LatencyMicros: latency.Microseconds(),
	}

	naive, err := blockstoreScan(c, fake, "naive", -1, false)
	if err != nil {
		return err
	}
	coalesced, err := blockstoreScan(c, fake, "coalesced", 0, true)
	if err != nil {
		return err
	}
	if naive.Rows != coalesced.Rows {
		return fmt.Errorf("naive scan saw %d rows, coalesced %d", naive.Rows, coalesced.Rows)
	}
	report.Points = []blockstorePoint{naive, coalesced}
	report.CoalesceFactor = float64(naive.RangeReads) / maxf(float64(coalesced.RangeReads), 1)
	report.Speedup = naive.Secs / maxf(coalesced.Secs, 1e-9)

	t := &table{header: []string{"mode", "secs", "range reads", "bytes", "coalesced", "prefetch hits", "tiles"}}
	for _, p := range report.Points {
		t.row(p.Mode, fmt.Sprintf("%.4f", p.Secs), fmt.Sprintf("%d", p.RangeReads),
			fmt.Sprintf("%d", p.BytesRead), fmt.Sprintf("%d", p.Coalesced),
			fmt.Sprintf("%d", p.PrefetchHits),
			fmt.Sprintf("%d/%d scanned", p.TilesScanned, p.TilesScanned+p.TilesSkipped))
	}
	t.write(w)
	fmt.Fprintf(w, "request reduction %.2fx, wall speedup %.2fx at %s/request\n",
		report.CoalesceFactor, report.Speedup, latency)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	path := filepath.Join(c.Opts.OutDir, blockstoreBenchFile)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "blockstore comparison written to %s\n", path)
	return nil
}

// BlockstoreSmoke is the CI gate: on the geo-filtered remote scan,
// default coalescing must cut the fake store's range-read count by at
// least minFactor vs coalescing-disabled, with identical row counts.
// Request counts are deterministic (unlike wall time), so the gate is
// stable on loaded CI machines.
func BlockstoreSmoke(w io.Writer, c *Context, minFactor float64) error {
	fake := blockstore.NewFakeS3(nil, blockstore.FakeS3Config{})
	if _, err := blockstoreTable(c, fake, 4, 1000); err != nil {
		return err
	}
	naive, err := blockstoreScan(c, fake, "naive", -1, false)
	if err != nil {
		return err
	}
	coalesced, err := blockstoreScan(c, fake, "coalesced", 0, true)
	if err != nil {
		return err
	}
	factor := float64(naive.RangeReads) / maxf(float64(coalesced.RangeReads), 1)
	fmt.Fprintf(w, "remote scan range reads: naive %d, coalesced %d (%.2fx; %d rows, tiles %d/%d scanned, numcpu=%d)\n",
		naive.RangeReads, coalesced.RangeReads, factor, coalesced.Rows,
		coalesced.TilesScanned, coalesced.TilesScanned+coalesced.TilesSkipped, runtime.NumCPU())
	if naive.Rows != coalesced.Rows {
		return fmt.Errorf("row counts diverge: naive %d, coalesced %d", naive.Rows, coalesced.Rows)
	}
	if factor < minFactor {
		return fmt.Errorf("coalescing request reduction = %.2fx, below the %.2fx gate", factor, minFactor)
	}
	return nil
}
