package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/bufpool"
	"repro/internal/obs"
	"repro/internal/storage"
)

// segBenchFile is where the seg experiment records its measurements
// (committed next to EXPERIMENTS.md as the persistence baseline).
const segBenchFile = "BENCH_segment.json"

// segResult is one query row of the recorded baseline: the same
// pipeline over the in-memory tiles, over a cold-opened segment (open
// + query with an empty buffer pool, per repetition), and over a warm
// segment (pool already holds every accessed block).
type segResult struct {
	Query     string  `json:"query"`
	MemSecs   float64 `json:"mem_secs"`
	ColdSecs  float64 `json:"cold_secs"`
	WarmSecs  float64 `json:"warm_secs"`
	WarmVsMem float64 `json:"warm_vs_mem"`
}

type segReport struct {
	Workload     string      `json:"workload"`
	Rows         int         `json:"rows"`
	Workers      int         `json:"workers"`
	SegmentBytes int64       `json:"segment_bytes"`
	RawJSONBytes int64       `json:"raw_json_bytes"`
	SegVsRawJSON float64     `json:"segment_vs_raw_json"`
	Results      []segResult `json:"results"`
	// Metrics is the process-wide instrument delta over the experiment.
	Metrics obs.Snapshot `json:"metrics"`
}

// segExp — segment persistence: the vec experiment's pipelines over
// (a) the in-memory tiles relation, (b) a segment file cold-opened
// with an empty buffer pool every repetition, and (c) the same open
// segment once the pool is warm; plus the segment file's size against
// the raw newline-delimited JSON it was loaded from. Records the
// baseline to BENCH_segment.json.
func segExp(w io.Writer, c *Context) error {
	workers := c.Opts.workers()
	metricsBase := obs.Default.Snapshot()
	lines := c.lineitemLines()
	rel := c.relation("tpch-lineitem", storage.KindTiles, c.lineitemLines)

	dir, err := os.MkdirTemp("", "jtbench-seg")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	segPath := filepath.Join(dir, "lineitem.seg")
	if err := storage.WriteSegmentFile(segPath, rel); err != nil {
		return err
	}
	fi, err := os.Stat(segPath)
	if err != nil {
		return err
	}
	var rawBytes int64
	for _, l := range lines {
		rawBytes += int64(len(l)) + 1
	}

	// The warm relation stays open across queries; its pool is big
	// enough that nothing accessed is ever evicted.
	warm, err := storage.OpenSegmentFile("lineitem", segPath, bufpool.New(1<<30), c.loaderConfig())
	if err != nil {
		return err
	}
	defer warm.Close()

	report := segReport{
		Workload: "tpch-lineitem", Rows: rel.NumRows(), Workers: workers,
		SegmentBytes: fi.Size(), RawJSONBytes: rawBytes,
		SegVsRawJSON: float64(fi.Size()) / maxf(float64(rawBytes), 1),
	}
	t := &table{header: []string{"query", "mem s", "cold s", "warm s", "warm/mem"}}
	for _, q := range vecQueries() {
		memD := c.timeIt(func() { q.run(rel, workers) })
		coldD := c.timeIt(func() {
			cold, err := storage.OpenSegmentFile("lineitem", segPath, bufpool.New(0), c.loaderConfig())
			if err != nil {
				panic(err)
			}
			q.run(cold, workers)
			cold.Close()
		})
		q.run(warm, workers) // prime the pool
		warmD := c.timeIt(func() { q.run(warm, workers) })
		ratio := warmD.Seconds() / maxf(memD.Seconds(), 1e-9)
		t.row(q.name, secs(memD), secs(coldD), secs(warmD), fmt.Sprintf("%.2fx", ratio))
		report.Results = append(report.Results, segResult{
			Query: q.name, MemSecs: memD.Seconds(), ColdSecs: coldD.Seconds(),
			WarmSecs: warmD.Seconds(), WarmVsMem: ratio,
		})
	}
	t.write(w)
	fmt.Fprintf(w, "segment %d B, raw JSON %d B (%.0f%%)\n",
		report.SegmentBytes, report.RawJSONBytes, 100*report.SegVsRawJSON)

	report.Metrics = obs.Default.Snapshot().Diff(metricsBase)
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	path := filepath.Join(c.Opts.OutDir, segBenchFile)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline written to %s\n", path)
	return nil
}
