package bench

// The query-service experiment: end-to-end HTTP throughput through
// the admission-controlled front door at increasing client
// concurrency, plus the cancellation-latency distribution that the
// morsel-boundary context checks bound.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	jsontiles "repro"
	"repro/internal/obs"
	"repro/internal/service"
)

const serviceBenchFile = "BENCH_service.json"

// servicePoint is one client-concurrency level.
type servicePoint struct {
	Clients int     `json:"clients"`
	Queries int     `json:"queries"`
	Secs    float64 `json:"secs"`
	QPS     float64 `json:"qps"`
	// Rejected429 counts admission pushback the clients retried
	// through (nonzero once clients outnumber slots+queue).
	Rejected429 int `json:"rejected_429"`
}

type serviceReport struct {
	Workload string `json:"workload"`
	Rows     int    `json:"rows"`
	NumCPU   int    `json:"numcpu"`
	// MaxConcurrent/QueueDepth are the admission settings the sweep
	// ran under.
	MaxConcurrent int            `json:"max_concurrent"`
	QueueDepth    int            `json:"queue_depth"`
	Points        []servicePoint `json:"points"`
	// CancelLatencyMS is the p50/p95/max wall time for RunContext to
	// return after its context is cancelled mid-scan — bounded by one
	// morsel, not by the remaining table.
	CancelLatencyMS map[string]float64 `json:"cancel_latency_ms"`
	// Metrics is the process-wide instrument delta over the experiment
	// (admission_admitted, admission_queued, queries_cancelled, ...).
	Metrics obs.Snapshot `json:"metrics"`
}

// serviceEnvelope is the benchmark query: a selective filter plus
// group-by over the Yelp reviews, heavy enough to hold an execution
// slot for a measurable moment.
const serviceEnvelope = `{
  "table": "reviews",
  "select": ["data->>'stars'::BigInt", "data->>'useful'::BigInt"],
  "where": [{"col": 0, "op": ">=", "value": 2}],
  "group_by": [0],
  "aggs": [{"fn": "count", "name": "n"}, {"fn": "avg", "col": 1, "name": "u"}],
  "order_by": [{"col": 0}]
}`

// serviceExp — HTTP client sweep against an in-process server,
// recording BENCH_service.json.
func serviceExp(w io.Writer, c *Context) error {
	metricsBase := obs.Default.Snapshot()

	opts := jsontiles.DefaultOptions()
	opts.Workers = c.Opts.workers()
	tbl, err := jsontiles.Load("reviews", c.yelpLines(), opts)
	if err != nil {
		return err
	}

	maxConc := runtime.NumCPU()
	queueDepth := 4 * maxConc
	srv := service.New(service.Config{
		Addr:          "127.0.0.1:0",
		MaxConcurrent: maxConc,
		QueueDepth:    queueDepth,
		QueueTimeout:  5 * time.Second,
	})
	srv.Register("reviews", tbl)
	addr, err := srv.Start()
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	url := "http://" + addr + "/query"

	report := serviceReport{
		Workload: "yelp-reviews", Rows: tbl.NumRows(), NumCPU: runtime.NumCPU(),
		MaxConcurrent: maxConc, QueueDepth: queueDepth,
	}

	t := &table{header: []string{"clients", "queries", "secs", "qps", "429s"}}
	const queriesPerClient = 20
	for _, clients := range []int{1, 2, 4, 8, 16, 32} {
		total := clients * queriesPerClient
		var rejected int64
		var mu sync.Mutex
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				tenant := fmt.Sprintf("bench-%d", g%4)
				for q := 0; q < queriesPerClient; q++ {
					for {
						req, _ := http.NewRequest(http.MethodPost, url, strings.NewReader(serviceEnvelope))
						req.Header.Set("X-JT-Tenant", tenant)
						resp, err := http.DefaultClient.Do(req)
						if err != nil {
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode == http.StatusTooManyRequests {
							mu.Lock()
							rejected++
							mu.Unlock()
							time.Sleep(time.Millisecond)
							continue
						}
						break
					}
				}
			}(g)
		}
		wg.Wait()
		secs := time.Since(start).Seconds()
		p := servicePoint{
			Clients: clients, Queries: total, Secs: secs,
			QPS: float64(total) / maxf(secs, 1e-9), Rejected429: int(rejected),
		}
		report.Points = append(report.Points, p)
		t.row(fmt.Sprint(clients), fmt.Sprint(total),
			fmt.Sprintf("%.3f", p.Secs), fmt.Sprintf("%.1f", p.QPS), fmt.Sprint(p.Rejected429))
	}
	t.write(w)

	// Cancellation latency: how long RunContext takes to return after
	// a mid-scan cancel. Bounded by one morsel of work.
	var lat []float64
	for i := 0; i < 30; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		var elapsed time.Duration
		go func() {
			defer close(done)
			begin := time.Now()
			tbl.Query("data->>'review_id'", "data->>'stars'::BigInt").RunContext(ctx)
			elapsed = time.Since(begin)
		}()
		time.Sleep(200 * time.Microsecond)
		cancelAt := time.Now()
		cancel()
		<-done
		if after := elapsed - time.Since(cancelAt); after < 0 {
			// Query finished before the cancel landed; skip the sample.
			continue
		}
		lat = append(lat, float64(elapsed)/float64(time.Millisecond))
	}
	sort.Float64s(lat)
	report.CancelLatencyMS = map[string]float64{}
	if n := len(lat); n > 0 {
		report.CancelLatencyMS["p50"] = lat[n/2]
		report.CancelLatencyMS["p95"] = lat[n*95/100]
		report.CancelLatencyMS["max"] = lat[n-1]
		fmt.Fprintf(w, "cancel latency: p50=%.2fms p95=%.2fms max=%.2fms (%d samples)\n",
			report.CancelLatencyMS["p50"], report.CancelLatencyMS["p95"], report.CancelLatencyMS["max"], n)
	}

	report.Metrics = obs.Default.Snapshot().Diff(metricsBase)
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	path := filepath.Join(c.Opts.OutDir, serviceBenchFile)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "sweep written to %s (max_concurrent=%d queue_depth=%d)\n", path, maxConc, queueDepth)
	return nil
}
