package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/exprparse"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/tile"
)

// morselBenchFile records the morsel-scheduler worker sweep
// (committed next to EXPERIMENTS.md as the parallelism baseline).
const morselBenchFile = "BENCH_morsel.json"

// morselPoint is one worker count in a sweep curve.
type morselPoint struct {
	Workers int     `json:"workers"`
	Secs    float64 `json:"secs"`
	// Speedup is relative to the same query at workers=1.
	Speedup float64 `json:"speedup"`
}

type morselCurve struct {
	Query  string        `json:"query"`
	Points []morselPoint `json:"points"`
}

type morselReport struct {
	Workload string `json:"workload"`
	Rows     int    `json:"rows"`
	// NumCPU is the machine this sweep ran on; speedups above 1 are
	// only expected up to this worker count.
	NumCPU int           `json:"numcpu"`
	Tiles  int           `json:"tiles"`
	Curves []morselCurve `json:"curves"`
	// Metrics is the process-wide instrument delta over the experiment
	// (morsels_dispatched, morsel_queue_waits, worker-skew histogram,
	// agg_partitioned_merges, ...).
	Metrics obs.Snapshot `json:"metrics"`
}

// skewedTiles builds a deliberately skewed tiles relation from the
// shuffled TPC-H documents: ~80% of the rows in huge tiles and the
// remaining 20% in tiny ones, concatenated natively. Static chunking
// parks whole workers behind the huge tiles; the morsel scheduler
// splits them and batches the tiny ones.
func (c *Context) skewedTiles() storage.Relation {
	return cached(c, "morsel-skewed", func() storage.Relation {
		lines := c.tpchShuffled()
		cut := len(lines) * 4 / 5
		bigCfg := tile.DefaultConfig()
		bigCfg.TileSize = 16 << 10
		big := c.loadTiles(lines[:cut], bigCfg, false)
		tinyCfg := tile.DefaultConfig()
		tinyCfg.TileSize = 64
		tiny := c.loadTiles(lines[cut:], tinyCfg, false)
		return storage.Concat("tpch-skewed", big, tiny)
	})
}

// morselQueries are the swept pipelines: raw scan, selective filter,
// hash group-by (the partitioned-merge path), and a hash join against
// a small build side.
func morselQueries() []struct {
	name string
	run  func(rel storage.Relation, workers int)
} {
	accs := func() []storage.Access {
		return []storage.Access{
			exprparse.MustParse(`data->>'l_linenumber'::BigInt`),
			exprparse.MustParse(`data->>'l_quantity'::Float`),
			exprparse.MustParse(`data->>'l_partkey'::BigInt`),
		}
	}
	filter := func() expr.Expr {
		return expr.NewCmp(expr.LT, expr.NewCol(0, expr.TBigInt),
			expr.NewConst(expr.IntValue(4)))
	}
	return []struct {
		name string
		run  func(rel storage.Relation, workers int)
	}{
		{"scan", func(rel storage.Relation, workers int) {
			engine.CountRows(engine.NewScan(rel, accs(), nil, nil), workers)
		}},
		{"filter", func(rel storage.Relation, workers int) {
			engine.CountRows(engine.NewScan(rel, accs(), nil, filter()), workers)
		}},
		{"groupby", func(rel storage.Relation, workers int) {
			gb := engine.NewGroupBy(engine.NewScan(rel, accs(), nil, nil),
				[]expr.Expr{expr.NewCol(2, expr.TBigInt)}, []string{"pk"},
				[]engine.AggSpec{
					{Func: engine.CountStar, Name: "n"},
					{Func: engine.Sum, Arg: expr.NewCol(1, expr.TFloat), Name: "q"},
				})
			engine.Materialize(gb, workers)
		}},
		{"join", func(rel storage.Relation, workers int) {
			build := engine.NewScan(rel, []storage.Access{
				exprparse.MustParse(`data->>'l_orderkey'::BigInt`),
			}, nil, expr.NewCmp(expr.LT, expr.NewCol(0, expr.TBigInt),
				expr.NewConst(expr.IntValue(100))))
			probe := engine.NewScan(rel, []storage.Access{
				exprparse.MustParse(`data->>'l_orderkey'::BigInt`),
				exprparse.MustParse(`data->>'l_quantity'::Float`),
			}, nil, nil)
			join := engine.NewHashJoin(build, probe, []int{0}, []int{0}, engine.InnerJoin)
			engine.CountRows(join, workers)
		}},
	}
}

// morselSweepWorkers is the worker grid: 1, 2, 4, ... up to NumCPU,
// plus NumCPU itself, plus one oversubscribed point (2×NumCPU) to show
// surplus workers are harmless.
func morselSweepWorkers() []int {
	n := runtime.NumCPU()
	var ws []int
	for w := 1; w < n; w <<= 1 {
		ws = append(ws, w)
	}
	ws = append(ws, n)
	if n > 1 {
		ws = append(ws, 2*n)
	}
	return ws
}

// morselExp — morsel-driven scalability sweep over the skewed tile
// relation, recording BENCH_morsel.json.
func morselExp(w io.Writer, c *Context) error {
	metricsBase := obs.Default.Snapshot()
	rel := c.skewedTiles()
	tiles := 0
	if ti, ok := rel.(storage.TileIntrospector); ok {
		tiles = len(ti.Tiles())
	}
	report := morselReport{
		Workload: "tpch-skewed", Rows: rel.NumRows(),
		NumCPU: runtime.NumCPU(), Tiles: tiles,
	}

	sweep := morselSweepWorkers()
	header := []string{"query"}
	for _, ws := range sweep {
		header = append(header, fmt.Sprintf("w=%d", ws))
	}
	t := &table{header: header}
	for _, q := range morselQueries() {
		curve := morselCurve{Query: q.name}
		row := []string{q.name}
		var base float64
		for _, ws := range sweep {
			d := c.timeIt(func() { q.run(rel, ws) })
			s := d.Seconds()
			if ws == 1 {
				base = s
			}
			curve.Points = append(curve.Points, morselPoint{
				Workers: ws, Secs: s, Speedup: base / maxf(s, 1e-9),
			})
			row = append(row, fmt.Sprintf("%.4fs/%.1fx", s, base/maxf(s, 1e-9)))
		}
		report.Curves = append(report.Curves, curve)
		t.row(row...)
	}
	t.write(w)

	report.Metrics = obs.Default.Snapshot().Diff(metricsBase)
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	path := filepath.Join(c.Opts.OutDir, morselBenchFile)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "sweep written to %s (numcpu=%d)\n", path, report.NumCPU)
	return nil
}

// MorselSmoke is the CI gate: the group-by sweep at 4 workers must
// beat the serial run by minSpeedup. On machines with fewer than 4
// cores the check is skipped (a 1-core runner cannot show wall-clock
// parallel speedup) — it still runs the queries once per worker count
// as a smoke test.
func MorselSmoke(w io.Writer, c *Context, minSpeedup float64) error {
	rel := c.skewedTiles()
	gq := morselQueries()[2]
	serial := c.timeIt(func() { gq.run(rel, 1) })
	par := c.timeIt(func() { gq.run(rel, 4) })
	speedup := serial.Seconds() / maxf(par.Seconds(), 1e-9)
	fmt.Fprintf(w, "groupby workers=1 %s, workers=4 %s: %.2fx (numcpu=%d)\n",
		serial, par, speedup, runtime.NumCPU())
	if runtime.NumCPU() < 4 {
		fmt.Fprintf(w, "skipping speedup gate: %d cores < 4\n", runtime.NumCPU())
		return nil
	}
	if speedup < minSpeedup {
		return fmt.Errorf("groupby speedup at 4 workers = %.2fx, below the %.2fx gate", speedup, minSpeedup)
	}
	return nil
}
