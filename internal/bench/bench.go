// Package bench implements the experiment harness: one runner per
// table and figure of the paper's evaluation (§6), each regenerating
// the corresponding rows/series on the synthetic workloads. Runners
// print paper-style output; EXPERIMENTS.md records a captured run
// next to the paper's numbers.
package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/storage"
	"repro/internal/tile"
	"repro/internal/workload/tpch"
	"repro/internal/workload/twitter"
	"repro/internal/workload/yelp"
)

// Options scales the experiments.
type Options struct {
	// Scale is the TPC-H scale factor (also scales Yelp and Twitter
	// document counts proportionally).
	Scale float64
	// Workers bounds scan parallelism (0 = GOMAXPROCS).
	Workers int
	// Repeats is the number of timed repetitions per measurement; the
	// median is reported.
	Repeats int
	// OutDir is where experiments that record baseline artifacts
	// (e.g. BENCH_vectorized.json) write them. Empty means the
	// current directory.
	OutDir string
}

// DefaultOptions is sized for a laptop-class machine.
func DefaultOptions() Options {
	return Options{Scale: 0.01, Workers: 0, Repeats: 3}
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, ctx *Context) error
}

// Experiments returns every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig7", "Figure 7: external-competitor throughput, Q1/Q18 (queries/sec, all workers)", fig7},
		{"fig8", "Figure 8: scalability of internal competitors, Q1/Q18", fig8},
		{"tab1", "Table 1: execution times for all 22 TPC-H queries (seconds)", tab1},
		{"tab2", "Table 2: execution times for all Yelp queries (seconds)", tab2},
		{"tab3", "Table 3: execution times for all Twitter queries (seconds)", tab3},
		{"tab4", "Table 4: geo-mean of Twitter, static vs changing structure (seconds)", tab4},
		{"fig9", "Figure 9: shuffled TPC-H geometric mean (seconds)", fig9},
		{"fig10", "Figure 10: geo-mean of shuffled TPC-H vs tile/partition size", fig10},
		{"fig11", "Figure 11: loading time of shuffled TPC-H vs tile/partition size", fig11},
		{"fig12", "Figure 12: Yelp geo-mean vs tile size", fig12},
		{"fig13", "Figure 13: Twitter geo-mean vs tile size", fig13},
		{"fig14", "Figure 14: geometric means at different optimization levels", fig14},
		{"fig15", "Figure 15: throughput of the summation query (queries/sec)", fig15},
		{"tab5", "Table 5: per-tuple costs for the summation query", tab5},
		{"fig16", "Figure 16: insertion time breakdown", fig16},
		{"fig17", "Figure 17: parallel loading (1000 tuples/sec)", fig17},
		{"tab6", "Table 6: storage size in MB (% of JSONB)", tab6},
		{"fig18", "Figure 18: (de)serialization slowdown vs JSONB", fig18},
		{"fig19", "Figure 19: storage size relative to JSON text", fig19},
		{"fig20", "Figure 20: random accesses/sec on nested documents", fig20},
		{"vec", "Vectorized vs row-at-a-time execution over tiles (records BENCH_vectorized.json)", vecExp},
		{"morsel", "Morsel-driven worker sweep on skewed tiles: scan/filter/groupby/join (records BENCH_morsel.json)", morselExp},
		{"seg", "Segment persistence: cold-open vs warm buffer pool vs in-memory (records BENCH_segment.json)", segExp},
		{"dict", "Dictionary-encoded vs arena string columns: predicate and group-by fast paths (records BENCH_dict.json)", dictExp},
		{"compact", "Multi-segment tables: incremental append vs monolithic rewrite, compaction payoff (records BENCH_compact.json)", compactExp},
		{"service", "Query service: HTTP throughput vs client concurrency under admission control, cancellation latency (records BENCH_service.json)", serviceExp},
		{"ingest", "On-demand ingest: structural-tape vs jsonvalue-tree loading across formats (records BENCH_ingest.json)", ingestExp},
		{"blockstore", "Remote scans over a simulated object store: coalesced reads + readahead vs one request per block (records BENCH_blockstore.json)", blockstoreExp},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Context caches generated workloads and loaded relations across
// experiments of one run.
type Context struct {
	Opts Options
	// Metrics accumulates the tile-loading breakdown (parse, mine,
	// extract, jsonb, reorder) across every load this context performs;
	// the CLI prints the per-experiment delta.
	Metrics *tile.Metrics
	mu      sync.Mutex
	cache   map[string]any
}

// NewContext returns a fresh cache.
func NewContext(opts Options) *Context {
	if opts.Repeats < 1 {
		opts.Repeats = 1
	}
	if opts.Scale <= 0 {
		opts.Scale = DefaultOptions().Scale
	}
	return &Context{Opts: opts, Metrics: &tile.Metrics{}, cache: map[string]any{}}
}

func cached[T any](c *Context, key string, build func() T) T {
	c.mu.Lock()
	if v, ok := c.cache[key]; ok {
		c.mu.Unlock()
		return v.(T)
	}
	c.mu.Unlock()
	v := build()
	c.mu.Lock()
	c.cache[key] = v
	c.mu.Unlock()
	return v
}

// Workload lines.

func (c *Context) tpchLines() [][]byte {
	return cached(c, "tpch-lines", func() [][]byte {
		lines, _ := tpch.Generate(tpch.Config{ScaleFactor: c.Opts.Scale, Seed: 42})
		return lines
	})
}

func (c *Context) tpchShuffled() [][]byte {
	return cached(c, "tpch-shuffled", func() [][]byte {
		return tpch.Shuffle(c.tpchLines(), 77)
	})
}

func (c *Context) yelpLines() [][]byte {
	return cached(c, "yelp-lines", func() [][]byte {
		f := c.Opts.Scale / 0.01
		cfg := yelp.Config{
			Businesses: imax(50, int(2000*f)), Users: imax(100, int(4000*f)),
			Reviews: imax(400, int(16000*f)), Tips: imax(100, int(4000*f)),
			Checkins: imax(50, int(2000*f)), Seed: 42,
		}
		lines, _ := yelp.Generate(cfg)
		return lines
	})
}

func (c *Context) twitterLines(changing bool) [][]byte {
	key := "twitter-lines"
	if changing {
		key = "twitter-changing"
	}
	return cached(c, key, func() [][]byte {
		f := c.Opts.Scale / 0.01
		return twitter.Generate(twitter.Config{
			Tweets: imax(1000, int(30000*f)), DeleteRatio: 0.4,
			Changing: changing, Seed: 42,
		})
	})
}

func imax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Loaded relations.

var allFormats = []storage.FormatKind{storage.KindJSON, storage.KindJSONB,
	storage.KindSinew, storage.KindTiles, storage.KindShredded}

var internalFormats = []storage.FormatKind{storage.KindJSON, storage.KindJSONB,
	storage.KindSinew, storage.KindTiles}

func (c *Context) loaderConfig() storage.LoaderConfig {
	cfg := storage.DefaultLoaderConfig()
	cfg.Metrics = c.Metrics
	return cfg
}

func (c *Context) relation(workload string, kind storage.FormatKind, lines func() [][]byte) storage.Relation {
	return cached(c, workload+"/"+string(kind), func() storage.Relation {
		l, err := storage.NewLoader(kind, c.loaderConfig())
		if err != nil {
			panic(err)
		}
		rel, err := l.Load(workload, lines(), c.Opts.workers())
		if err != nil {
			panic(err)
		}
		return rel
	})
}

func (c *Context) tpchRel(kind storage.FormatKind) storage.Relation {
	return c.relation("tpch", kind, c.tpchLines)
}

func (c *Context) yelpRel(kind storage.FormatKind) storage.Relation {
	return c.relation("yelp", kind, c.yelpLines)
}

func (c *Context) twitterRel(kind storage.FormatKind) storage.Relation {
	return c.relation("twitter", kind, func() [][]byte { return c.twitterLines(false) })
}

func (c *Context) twitterStar(changing bool) *storage.TilesStar {
	key := "twitter-star"
	if changing {
		key += "-changing"
	}
	return cached(c, key, func() *storage.TilesStar {
		star, err := storage.BuildTilesStar("twitter", c.twitterLines(changing),
			c.loaderConfig(), c.Opts.workers(), twitter.IDPath(), twitter.ArrayPaths()...)
		if err != nil {
			panic(err)
		}
		return star
	})
}

// Measurement helpers.

// timeIt returns the median wall time of fn over the configured
// repetitions.
func (c *Context) timeIt(fn func()) time.Duration {
	times := make([]time.Duration, 0, c.Opts.Repeats)
	for i := 0; i < c.Opts.Repeats; i++ {
		start := time.Now()
		fn()
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

// geoMean of durations in seconds.
func geoMean(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	logSum := 0.0
	for _, d := range ds {
		s := d.Seconds()
		if s <= 0 {
			s = 1e-9
		}
		logSum += math.Log(s)
	}
	return math.Exp(logSum / float64(len(ds)))
}

// table is a minimal fixed-width table printer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.header)
	for _, r := range t.rows {
		line(r)
	}
}

func secs(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

func qps(d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", 1/d.Seconds())
}

// runTPCHQuery executes one TPC-H query and returns its median time.
func (c *Context) runTPCHQuery(rel storage.Relation, num, workers int) time.Duration {
	q, ok := tpch.QueryByNum(num)
	if !ok {
		panic(fmt.Sprintf("no TPC-H query %d", num))
	}
	return c.timeIt(func() { q.Run(rel, workers) })
}

// loadTiles builds a Tiles relation with a custom tile config (for the
// tuning sweeps), bypassing the cache.
func (c *Context) loadTiles(lines [][]byte, tcfg tile.Config, reorder bool) storage.Relation {
	cfg := c.loaderConfig()
	cfg.Tile = tcfg
	cfg.Reorder = reorder
	l, err := storage.NewLoader(storage.KindTiles, cfg)
	if err != nil {
		panic(err)
	}
	rel, err := l.Load("sweep", lines, c.Opts.workers())
	if err != nil {
		panic(err)
	}
	return rel
}
