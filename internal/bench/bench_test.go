package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment at a tiny scale —
// the end-to-end guarantee that `jtbench all` works.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs every experiment")
	}
	ctx := NewContext(Options{Scale: 0.001, Workers: 2, Repeats: 1, OutDir: t.TempDir()})
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, ctx); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			// Every table prints at least a header and one data row.
			if lines := strings.Count(buf.String(), "\n"); lines < 2 {
				t.Errorf("%s output too short:\n%s", e.ID, buf.String())
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("tab1"); !ok {
		t.Error("tab1 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus id found")
	}
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if len(ids) != 28 {
		t.Errorf("%d experiments, want 28 (every table and figure + vec + morsel + seg + dict + compact + service + ingest + blockstore)", len(ids))
	}
}

func TestGeoMean(t *testing.T) {
	if g := geoMean(nil); g != 0 {
		t.Errorf("empty geo-mean = %f", g)
	}
}

func TestContextCaching(t *testing.T) {
	ctx := NewContext(Options{Scale: 0.001, Workers: 1, Repeats: 1})
	a := ctx.tpchLines()
	b := ctx.tpchLines()
	if &a[0] != &b[0] {
		t.Error("lines not cached")
	}
	r1 := ctx.tpchRel("Tiles")
	r2 := ctx.tpchRel("Tiles")
	if r1 != r2 {
		t.Error("relation not cached")
	}
}
