// Package cbor implements the RFC 7049 (CBOR) subset needed for the
// paper's §6.9 comparison against the JsonCons CBOR implementation
// [49]: serialization from and deserialization to the JSON value
// model, with canonical-style minimal integer widths and
// smallest-lossless float encoding — CBOR is an exchange format
// optimized for wire size, which is why Figure 19 shows it smallest.
//
// The design property under test is that CBOR has no random access at
// all: maps are a length-prefixed sequence of key/value pairs with no
// offsets, so "accessing keys within a document requires the object to
// be extracted" — Lookup sequentially decodes (skips) pairs.
package cbor

import (
	"encoding/binary"
	"errors"
	"math"

	"repro/internal/float16"
	"repro/internal/jsonvalue"
)

// Major types.
const (
	majorUint   = 0
	majorNegInt = 1
	majorBytes  = 2
	majorText   = 3
	majorArray  = 4
	majorMap    = 5
	majorTag    = 6
	majorSimple = 7
)

// ErrCorrupt reports an undecodable item.
var ErrCorrupt = errors.New("cbor: corrupt item")

// Marshal encodes a JSON value as a CBOR data item.
func Marshal(v jsonvalue.Value) []byte { return appendValue(nil, v) }

func appendValue(dst []byte, v jsonvalue.Value) []byte {
	switch v.Kind() {
	case jsonvalue.KindNull:
		return append(dst, 0xF6)
	case jsonvalue.KindBool:
		if v.BoolVal() {
			return append(dst, 0xF5)
		}
		return append(dst, 0xF4)
	case jsonvalue.KindInt:
		i := v.IntVal()
		if i >= 0 {
			return appendHead(dst, majorUint, uint64(i))
		}
		return appendHead(dst, majorNegInt, uint64(-1-i))
	case jsonvalue.KindFloat:
		return appendFloat(dst, v.FloatVal())
	case jsonvalue.KindString:
		dst = appendHead(dst, majorText, uint64(len(v.StringVal())))
		return append(dst, v.StringVal()...)
	case jsonvalue.KindArray:
		dst = appendHead(dst, majorArray, uint64(v.Len()))
		for _, e := range v.Elems() {
			dst = appendValue(dst, e)
		}
		return dst
	case jsonvalue.KindObject:
		dst = appendHead(dst, majorMap, uint64(v.Len()))
		for _, m := range v.Members() {
			dst = appendHead(dst, majorText, uint64(len(m.Key)))
			dst = append(dst, m.Key...)
			dst = appendValue(dst, m.Value)
		}
		return dst
	}
	return append(dst, 0xF6)
}

func appendHead(dst []byte, major byte, n uint64) []byte {
	mb := major << 5
	switch {
	case n < 24:
		return append(dst, mb|byte(n))
	case n <= 0xFF:
		return append(dst, mb|24, byte(n))
	case n <= 0xFFFF:
		return append(dst, mb|25, byte(n>>8), byte(n))
	case n <= 0xFFFFFFFF:
		dst = append(dst, mb|26)
		return binary.BigEndian.AppendUint32(dst, uint32(n))
	default:
		dst = append(dst, mb|27)
		return binary.BigEndian.AppendUint64(dst, n)
	}
}

func appendFloat(dst []byte, f float64) []byte {
	if h, ok := float16.FromFloat64(f); ok {
		return append(dst, 0xF9, byte(h>>8), byte(h))
	}
	if s, ok := float16.SingleFromFloat64(f); ok {
		dst = append(dst, 0xFA)
		return binary.BigEndian.AppendUint32(dst, s)
	}
	dst = append(dst, 0xFB)
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
}

// Unmarshal decodes a single CBOR item (trailing bytes are an error).
func Unmarshal(data []byte) (jsonvalue.Value, error) {
	v, rest, err := readValue(data)
	if err != nil {
		return jsonvalue.Null(), err
	}
	if len(rest) != 0 {
		return jsonvalue.Null(), ErrCorrupt
	}
	return v, nil
}

func readHead(data []byte) (major byte, n uint64, rest []byte, err error) {
	if len(data) == 0 {
		return 0, 0, nil, ErrCorrupt
	}
	major = data[0] >> 5
	ai := data[0] & 0x1F
	switch {
	case ai < 24:
		return major, uint64(ai), data[1:], nil
	case ai == 24:
		if len(data) < 2 {
			return 0, 0, nil, ErrCorrupt
		}
		return major, uint64(data[1]), data[2:], nil
	case ai == 25:
		if len(data) < 3 {
			return 0, 0, nil, ErrCorrupt
		}
		return major, uint64(binary.BigEndian.Uint16(data[1:])), data[3:], nil
	case ai == 26:
		if len(data) < 5 {
			return 0, 0, nil, ErrCorrupt
		}
		return major, uint64(binary.BigEndian.Uint32(data[1:])), data[5:], nil
	case ai == 27:
		if len(data) < 9 {
			return 0, 0, nil, ErrCorrupt
		}
		return major, binary.BigEndian.Uint64(data[1:]), data[9:], nil
	default:
		return 0, 0, nil, ErrCorrupt // indefinite lengths unsupported
	}
}

func readValue(data []byte) (jsonvalue.Value, []byte, error) {
	if len(data) == 0 {
		return jsonvalue.Null(), nil, ErrCorrupt
	}
	// Simple values and floats.
	if data[0]>>5 == majorSimple {
		switch data[0] {
		case 0xF4:
			return jsonvalue.Bool(false), data[1:], nil
		case 0xF5:
			return jsonvalue.Bool(true), data[1:], nil
		case 0xF6, 0xF7:
			return jsonvalue.Null(), data[1:], nil
		case 0xF9:
			if len(data) < 3 {
				return jsonvalue.Null(), nil, ErrCorrupt
			}
			h := uint16(data[1])<<8 | uint16(data[2])
			return jsonvalue.Float(float16.ToFloat64(h)), data[3:], nil
		case 0xFA:
			if len(data) < 5 {
				return jsonvalue.Null(), nil, ErrCorrupt
			}
			return jsonvalue.Float(float64(math.Float32frombits(binary.BigEndian.Uint32(data[1:])))), data[5:], nil
		case 0xFB:
			if len(data) < 9 {
				return jsonvalue.Null(), nil, ErrCorrupt
			}
			return jsonvalue.Float(math.Float64frombits(binary.BigEndian.Uint64(data[1:]))), data[9:], nil
		default:
			return jsonvalue.Null(), nil, ErrCorrupt
		}
	}
	major, n, rest, err := readHead(data)
	if err != nil {
		return jsonvalue.Null(), nil, err
	}
	switch major {
	case majorUint:
		if n > math.MaxInt64 {
			return jsonvalue.Float(float64(n)), rest, nil
		}
		return jsonvalue.Int(int64(n)), rest, nil
	case majorNegInt:
		if n > math.MaxInt64 {
			return jsonvalue.Null(), nil, ErrCorrupt
		}
		return jsonvalue.Int(-1 - int64(n)), rest, nil
	case majorText, majorBytes:
		if uint64(len(rest)) < n {
			return jsonvalue.Null(), nil, ErrCorrupt
		}
		return jsonvalue.String(string(rest[:n])), rest[n:], nil
	case majorArray:
		if n > uint64(len(rest)) {
			return jsonvalue.Null(), nil, ErrCorrupt
		}
		elems := make([]jsonvalue.Value, 0, n)
		for i := uint64(0); i < n; i++ {
			var e jsonvalue.Value
			e, rest, err = readValue(rest)
			if err != nil {
				return jsonvalue.Null(), nil, err
			}
			elems = append(elems, e)
		}
		return jsonvalue.Array(elems...), rest, nil
	case majorMap:
		if n > uint64(len(rest)) {
			return jsonvalue.Null(), nil, ErrCorrupt
		}
		members := make([]jsonvalue.Member, 0, n)
		for i := uint64(0); i < n; i++ {
			var k jsonvalue.Value
			k, rest, err = readValue(rest)
			if err != nil {
				return jsonvalue.Null(), nil, err
			}
			if k.Kind() != jsonvalue.KindString {
				return jsonvalue.Null(), nil, ErrCorrupt
			}
			var v jsonvalue.Value
			v, rest, err = readValue(rest)
			if err != nil {
				return jsonvalue.Null(), nil, err
			}
			members = append(members, jsonvalue.Member{Key: k.StringVal(), Value: v})
		}
		return jsonvalue.Object(members...), rest, nil
	default:
		return jsonvalue.Null(), nil, ErrCorrupt
	}
}

// skipValue advances past one item without materializing it.
func skipValue(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, ErrCorrupt
	}
	if data[0]>>5 == majorSimple {
		switch data[0] {
		case 0xF9:
			if len(data) < 3 {
				return nil, ErrCorrupt
			}
			return data[3:], nil
		case 0xFA:
			if len(data) < 5 {
				return nil, ErrCorrupt
			}
			return data[5:], nil
		case 0xFB:
			if len(data) < 9 {
				return nil, ErrCorrupt
			}
			return data[9:], nil
		default:
			return data[1:], nil
		}
	}
	major, n, rest, err := readHead(data)
	if err != nil {
		return nil, err
	}
	switch major {
	case majorUint, majorNegInt:
		return rest, nil
	case majorText, majorBytes:
		if uint64(len(rest)) < n {
			return nil, ErrCorrupt
		}
		return rest[n:], nil
	case majorArray:
		for i := uint64(0); i < n; i++ {
			rest, err = skipValue(rest)
			if err != nil {
				return nil, err
			}
		}
		return rest, nil
	case majorMap:
		for i := uint64(0); i < n; i++ {
			rest, err = skipValue(rest)
			if err != nil {
				return nil, err
			}
			rest, err = skipValue(rest)
			if err != nil {
				return nil, err
			}
		}
		return rest, nil
	default:
		return nil, ErrCorrupt
	}
}

// Lookup finds a key in a CBOR map by sequentially decoding pairs —
// the access pattern the paper measures: no offsets exist, so every
// preceding value must be skipped byte-by-byte.
func Lookup(data []byte, key string) (jsonvalue.Value, bool) {
	major, n, rest, err := readHead(data)
	if err != nil || major != majorMap {
		return jsonvalue.Null(), false
	}
	for i := uint64(0); i < n; i++ {
		km, kn, krest, err := readHead(rest)
		if err != nil || km != majorText || uint64(len(krest)) < kn {
			return jsonvalue.Null(), false
		}
		k := string(krest[:kn])
		rest = krest[kn:]
		if k == key {
			v, _, err := readValue(rest)
			if err != nil {
				return jsonvalue.Null(), false
			}
			return v, true
		}
		rest, err = skipValue(rest)
		if err != nil {
			return jsonvalue.Null(), false
		}
	}
	return jsonvalue.Null(), false
}

// LookupPath chains Lookup through nested maps. Every level pays the
// sequential scan.
func LookupPath(data []byte, keys ...string) (jsonvalue.Value, bool) {
	cur := data
	for i, k := range keys {
		major, n, rest, err := readHead(cur)
		if err != nil || major != majorMap {
			return jsonvalue.Null(), false
		}
		found := false
		for j := uint64(0); j < n; j++ {
			km, kn, krest, err := readHead(rest)
			if err != nil || km != majorText || uint64(len(krest)) < kn {
				return jsonvalue.Null(), false
			}
			name := string(krest[:kn])
			rest = krest[kn:]
			if name == k {
				if i == len(keys)-1 {
					v, _, err := readValue(rest)
					if err != nil {
						return jsonvalue.Null(), false
					}
					return v, true
				}
				cur = rest
				found = true
				break
			}
			rest, err = skipValue(rest)
			if err != nil {
				return jsonvalue.Null(), false
			}
		}
		if !found {
			return jsonvalue.Null(), false
		}
	}
	return jsonvalue.Null(), false
}
