package cbor

import (
	"testing"
	"testing/quick"

	"repro/internal/jsongen"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
)

func rt(t *testing.T, src string) []byte {
	t.Helper()
	v, err := jsontext.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	data := Marshal(v)
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("unmarshal %s: %v", src, err)
	}
	if !back.Equal(v) {
		t.Fatalf("round trip %s -> %#v", src, back)
	}
	return data
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{
		`null`, `true`, `false`, `0`, `23`, `24`, `255`, `256`, `65535`,
		`65536`, `4294967295`, `4294967296`, `-1`, `-24`, `-25`, `-9223372036854775808`,
		`0.5`, `2.5`, `3.141592653589793`, `1e100`,
		`""`, `"a"`, `"héllo 😀"`,
		`[]`, `[1,[2,[3]]]`, `{}`, `{"a":1,"b":{"c":[true,null]}}`,
	}
	for _, s := range srcs {
		rt(t, s)
	}
}

func TestMinimalHeads(t *testing.T) {
	sizes := map[string]int{
		`0`:     1, // inline
		`23`:    1,
		`24`:    2, // one extra byte
		`255`:   2,
		`256`:   3,
		`65535`: 3,
		`65536`: 5,
		`-1`:    1,
		`0.5`:   3, // half-precision float
	}
	for src, want := range sizes {
		data := rt(t, src)
		if len(data) != want {
			t.Errorf("Marshal(%s) = %d bytes, want %d", src, len(data), want)
		}
	}
}

func TestCompactnessVsText(t *testing.T) {
	// CBOR's raison d'être: smaller than JSON text on numeric data.
	v, _ := jsontext.ParseString(`{"values":[100,200,300,400,500,600,12345,99999]}`)
	data := Marshal(v)
	text := jsontext.Serialize(v)
	if len(data) >= len(text) {
		t.Errorf("CBOR %d bytes >= text %d bytes", len(data), len(text))
	}
}

func TestLookup(t *testing.T) {
	v, _ := jsontext.ParseString(`{"id":7,"user":{"name":"bo"},"last":"z"}`)
	data := Marshal(v)
	got, ok := Lookup(data, "last")
	if !ok || got.StringVal() != "z" {
		t.Errorf("Lookup(last) = %#v, %v", got, ok)
	}
	if _, ok := Lookup(data, "none"); ok {
		t.Error("missing key found")
	}
	nested, ok := LookupPath(data, "user", "name")
	if !ok || nested.StringVal() != "bo" {
		t.Errorf("LookupPath = %#v", nested)
	}
	if _, ok := LookupPath(data, "id", "x"); ok {
		t.Error("traversed a scalar")
	}
}

func TestCorrupt(t *testing.T) {
	v, _ := jsontext.ParseString(`{"a":[1,{"b":"c"}],"d":2.5,"e":"str"}`)
	data := Marshal(v)
	for i := 0; i < len(data); i++ {
		Unmarshal(data[:i])
	}
	for i := 0; i < len(data); i++ {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0xFF
		Unmarshal(bad)
		Lookup(bad, "a")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(g jsongen.Gen) bool {
		back, err := Unmarshal(Marshal(g.V))
		if err != nil {
			return false
		}
		return back.Equal(g.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickLookupAgrees(t *testing.T) {
	f := func(g jsongen.Gen) bool {
		if g.V.Kind() != jsonvalue.KindObject {
			return true
		}
		data := Marshal(g.V)
		for _, m := range g.V.Members() {
			got, ok := Lookup(data, m.Key)
			if !ok {
				return false
			}
			want := g.V.Get(m.Key)
			if !got.Equal(want) && !got.Equal(m.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
