package stats

// Merge folds other's statistics into s. Compaction uses this to
// give a merged segment the union of its inputs' statistics, and the
// multi-segment store uses it to present one relation-level view over
// many per-segment footers. The slot-replacement policy is the same
// as AddTile's: existing entries accumulate, new entries fill free
// slots, and once full a new entry must beat the stalest victim.
// Paths are folded in sorted order so merging the same inputs always
// produces the same statistics.
func (s *TableStats) Merge(other *TableStats) {
	if other == nil || other == s {
		return
	}
	other.mu.RLock()
	defer other.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tileSeq++
	seq := s.tileSeq
	s.totalRows += other.totalRows

	for _, path := range sortedKeys(other.freq) {
		oe := other.freq[path]
		if e, ok := s.freq[path]; ok {
			e.count += oe.count
			e.lastTile = seq
			continue
		}
		if len(s.freq) < s.freqSlots {
			s.freq[path] = &freqEntry{count: oe.count, lastTile: seq}
			continue
		}
		if victim := s.pickFreqVictim(); victim != "" && s.freq[victim].count < oe.count {
			delete(s.freq, victim)
			s.freq[path] = &freqEntry{count: oe.count, lastTile: seq}
		}
	}

	for _, path := range sortedKeys(other.histograms) {
		oe := other.histograms[path]
		if e, ok := s.histograms[path]; ok {
			e.hist.Merge(oe.hist)
			e.lastTile = seq
			continue
		}
		cp := *oe.hist
		if len(s.histograms) < s.sketchSlots {
			s.histograms[path] = &histEntry{hist: &cp, lastTile: seq}
			continue
		}
		victim, vE := "", (*histEntry)(nil)
		for p, e := range s.histograms {
			if vE == nil || e.lastTile < vE.lastTile {
				victim, vE = p, e
			}
		}
		if victim != "" && vE.hist.Total() < oe.hist.Total() {
			delete(s.histograms, victim)
			s.histograms[path] = &histEntry{hist: &cp, lastTile: seq}
		}
	}

	for _, path := range sortedKeys(other.sketches) {
		oe := other.sketches[path]
		if e, ok := s.sketches[path]; ok {
			e.sketch.Merge(oe.sketch)
			e.lastTile = seq
			continue
		}
		if len(s.sketches) < s.sketchSlots {
			s.sketches[path] = &sketchEntry{sketch: oe.sketch.Clone(), lastTile: seq}
			continue
		}
		if victim := s.pickSketchVictim(); victim != "" {
			ve := s.sketches[victim]
			if ve.sketch.Estimate() < oe.sketch.Estimate() || ve.lastTile < seq-int64(s.sketchSlots) {
				delete(s.sketches, victim)
				s.sketches[path] = &sketchEntry{sketch: oe.sketch.Clone(), lastTile: seq}
			}
		}
	}
}
