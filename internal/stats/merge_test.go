package stats

import (
	"math"
	"testing"
)

func buildStats(t *testing.T, docs []string) *TableStats {
	t.Helper()
	s := New(0, 0)
	s.AddTile(buildTile(t, docs...))
	return s
}

func TestMergeMatchesCombinedBuild(t *testing.T) {
	a := []string{`{"x": 1, "y": "a"}`, `{"x": 2, "y": "b"}`}
	b := []string{`{"x": 3, "z": true}`, `{"x": 4, "y": "a"}`}

	sa := buildStats(t, a)
	sa.Merge(buildStats(t, b))

	combined := buildStats(t, append(append([]string{}, a...), b...))

	if sa.RowCount() != combined.RowCount() {
		t.Fatalf("RowCount = %d, want %d", sa.RowCount(), combined.RowCount())
	}
	for _, path := range combined.TrackedPaths() {
		if got, want := sa.PathCount(path), combined.PathCount(path); got != want {
			t.Errorf("PathCount(%q) = %d, want %d", path, got, want)
		}
		if got, want := sa.DistinctCount(path), combined.DistinctCount(path); math.Abs(got-want) > 0.5 {
			t.Errorf("DistinctCount(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestMergeNilAndSelf(t *testing.T) {
	s := buildStats(t, []string{`{"x": 1}`})
	rows := s.RowCount()
	s.Merge(nil)
	s.Merge(s)
	if s.RowCount() != rows {
		t.Fatalf("RowCount changed on nil/self merge: %d != %d", s.RowCount(), rows)
	}
}

func TestMergeIsDeterministic(t *testing.T) {
	build := func() *TableStats {
		s := buildStats(t, []string{`{"a": 1, "b": 2}`})
		s.Merge(buildStats(t, []string{`{"b": 3, "c": 4}`}))
		s.Merge(buildStats(t, []string{`{"c": 5, "d": 6}`}))
		return s
	}
	x, y := build(), build()
	xs, ys := x.TrackedPaths(), y.TrackedPaths()
	if len(xs) != len(ys) {
		t.Fatalf("tracked path counts differ: %v vs %v", xs, ys)
	}
	for i := range xs {
		if xs[i] != ys[i] || x.PathCount(xs[i]) != y.PathCount(ys[i]) {
			t.Fatalf("merge not deterministic: %v vs %v", xs, ys)
		}
	}
}

func TestMergeRespectsSlotBounds(t *testing.T) {
	s := New(4, 2)
	s.AddTile(buildTile(t, `{"a":1,"b":2,"c":3,"d":4}`))
	other := New(4, 2)
	other.AddTile(buildTile(t, `{"e":1,"f":2,"g":3,"h":4}`))
	s.Merge(other)
	if got := len(s.TrackedPaths()); got > 4 {
		t.Errorf("%d tracked paths, bound 4", got)
	}
	if s.SketchCount() > 2 {
		t.Errorf("%d sketches, bound 2", s.SketchCount())
	}
	if s.RowCount() != 2 {
		t.Errorf("rows = %d", s.RowCount())
	}
}
