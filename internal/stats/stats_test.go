package stats

import (
	"fmt"
	"testing"

	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/tile"
)

func buildTile(t *testing.T, srcs ...string) *tile.Tile {
	t.Helper()
	docs := make([]jsonvalue.Value, len(srcs))
	for i, s := range srcs {
		v, err := jsontext.ParseString(s)
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = v
	}
	cfg := tile.DefaultConfig()
	cfg.DetectDates = false
	return tile.NewBuilder(cfg, nil).Build(docs)
}

func TestAddTileAggregates(t *testing.T) {
	s := New(0, 0)
	t1 := buildTile(t, `{"a":1,"b":"x"}`, `{"a":2,"b":"y"}`, `{"a":3}`)
	t2 := buildTile(t, `{"a":4,"c":true}`, `{"a":5,"c":false}`)
	s.AddTile(t1)
	s.AddTile(t2)

	if s.RowCount() != 5 {
		t.Errorf("rows = %d", s.RowCount())
	}
	if got := s.PathCount("a"); got != 5 {
		t.Errorf("PathCount(a) = %d", got)
	}
	if got := s.PathCount("b"); got != 2 {
		t.Errorf("PathCount(b) = %d", got)
	}
	if got := s.PathCount("c"); got != 2 {
		t.Errorf("PathCount(c) = %d", got)
	}
	if !s.HasPathStats("a") || s.HasPathStats("zz") {
		t.Error("HasPathStats wrong")
	}
}

func TestMissingPathUsesMinCounter(t *testing.T) {
	s := New(0, 0)
	s.AddTile(buildTile(t, `{"common":1,"rare":2}`, `{"common":3}`, `{"common":4}`))
	// Paths: common=3, rare=1. A missing path estimates like the
	// smallest tracked counter (the paper's heuristic).
	if got := s.PathCount("never_seen"); got != 1 {
		t.Errorf("missing path estimate = %d, want 1 (min counter)", got)
	}
}

func TestEmptyStatsFallsBackToRowCount(t *testing.T) {
	s := New(0, 0)
	if got := s.PathCount("x"); got != 0 {
		t.Errorf("empty stats PathCount = %d", got)
	}
	if got := s.DistinctCount("x"); got != 1 {
		t.Errorf("empty stats DistinctCount = %f", got)
	}
}

func TestSlotReplacement(t *testing.T) {
	s := New(4, 2) // tiny bounds to force eviction
	for i := 0; i < 10; i++ {
		srcs := []string{}
		for j := 0; j < 4; j++ {
			srcs = append(srcs, fmt.Sprintf(`{"k%d":%d}`, i, j))
		}
		s.AddTile(buildTile(t, srcs...))
	}
	// At most 4 counters survive; the structure must not grow beyond
	// its bounds.
	if got := len(s.TrackedPaths()); got > 4 {
		t.Errorf("%d tracked paths, bound 4", got)
	}
	if s.SketchCount() > 2 {
		t.Errorf("%d sketches, bound 2", s.SketchCount())
	}
	if s.RowCount() != 40 {
		t.Errorf("rows = %d", s.RowCount())
	}
}

func TestDistinctCountFromSketches(t *testing.T) {
	s := New(0, 0)
	var srcs []string
	for i := 0; i < 1024; i++ {
		srcs = append(srcs, fmt.Sprintf(`{"id":%d,"grp":%d}`, i, i%8))
	}
	// Two tiles sharing the value domains: merged sketches must count
	// union distincts, not sums.
	s.AddTile(buildTile(t, srcs[:512]...))
	s.AddTile(buildTile(t, srcs[512:]...))
	if d := s.DistinctCount("id"); d < 900 || d > 1150 {
		t.Errorf("DistinctCount(id) = %f, want ~1024", d)
	}
	if d := s.DistinctCount("grp"); d < 7 || d > 9 {
		t.Errorf("DistinctCount(grp) = %f, want ~8", d)
	}
}

func TestSelectivityEstimates(t *testing.T) {
	s := New(0, 0)
	// Two tiles: "half" fills the first tile entirely (so it is
	// extracted there and gets a sketch) and is absent from the
	// second — 50% presence overall.
	var t1Srcs, t2Srcs []string
	for i := 0; i < 50; i++ {
		t1Srcs = append(t1Srcs, fmt.Sprintf(`{"always":%d,"half":%d}`, i, i%10))
		t2Srcs = append(t2Srcs, fmt.Sprintf(`{"always":%d}`, 50+i))
	}
	s.AddTile(buildTile(t, t1Srcs...))
	s.AddTile(buildTile(t, t2Srcs...))
	if got := s.SelNotNull("always"); got != 1 {
		t.Errorf("SelNotNull(always) = %f", got)
	}
	if got := s.SelNotNull("half"); got != 0.5 {
		t.Errorf("SelNotNull(half) = %f", got)
	}
	// Equality on half: (1/10 distinct) * 0.5 presence = 0.05.
	if got := s.SelEquality("half"); got < 0.03 || got > 0.08 {
		t.Errorf("SelEquality(half) = %f", got)
	}
	if got := s.SelRange("always"); got < 0.2 || got > 0.5 {
		t.Errorf("SelRange = %f", got)
	}
}

func TestJoinCardinality(t *testing.T) {
	// |R|=1000 |S|=100, dR=1000 (key), dS=100: |R ⋈ S| = 1000*100/1000.
	if got := JoinCardinality(1000, 100, 1000, 100); got != 100 {
		t.Errorf("JoinCardinality = %f", got)
	}
	if got := JoinCardinality(10, 10, 0, 0); got != 100 {
		t.Errorf("degenerate distinct: %f", got)
	}
}

func TestTrackedPathsOrdered(t *testing.T) {
	s := New(0, 0)
	s.AddTile(buildTile(t,
		`{"hot":1,"cold":1}`, `{"hot":2}`, `{"hot":3}`))
	paths := s.TrackedPaths()
	if len(paths) < 2 || paths[0] != "hot" {
		t.Errorf("paths = %v", paths)
	}
}

// Marshal → Unmarshal must preserve every estimator the optimizer
// consults: counts, distinct estimates, histograms, and slot bounds.
func TestStatsSerializeRoundTrip(t *testing.T) {
	s := New(8, 4)
	tl := buildTile(t,
		`{"a":1,"b":"x","c":1.5}`,
		`{"a":2,"b":"y","c":2.5}`,
		`{"a":3,"b":"x","c":9.5}`,
	)
	s.AddTile(tl)
	s.AddTile(tl)

	got, err := UnmarshalBinary(s.MarshalBinary())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.RowCount() != s.RowCount() {
		t.Errorf("rows = %d, want %d", got.RowCount(), s.RowCount())
	}
	for _, p := range s.TrackedPaths() {
		if got.PathCount(p) != s.PathCount(p) {
			t.Errorf("PathCount(%s) = %d, want %d", p, got.PathCount(p), s.PathCount(p))
		}
		if got.DistinctCount(p) != s.DistinctCount(p) {
			t.Errorf("DistinctCount(%s) = %g, want %g", p, got.DistinctCount(p), s.DistinctCount(p))
		}
	}
	if g, w := got.SelLess("a", 2.0), s.SelLess("a", 2.0); g != w {
		t.Errorf("SelLess = %g, want %g", g, w)
	}
	if g, w := got.SketchCount(), s.SketchCount(); g != w {
		t.Errorf("SketchCount = %d, want %d", g, w)
	}
	// Re-marshal is byte-identical (sorted, deterministic encoding).
	a, b := s.MarshalBinary(), got.MarshalBinary()
	if len(a) != len(b) {
		t.Fatalf("re-marshal length %d, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("re-marshal differs at byte %d", i)
		}
	}
}

// Corrupt statistics payloads error instead of panicking.
func TestStatsUnmarshalCorrupt(t *testing.T) {
	s := New(0, 0)
	s.AddTile(buildTile(t, `{"a":1}`, `{"a":2}`))
	buf := s.MarshalBinary()
	for cut := 0; cut < len(buf); cut += 3 {
		if _, err := UnmarshalBinary(buf[:cut]); err == nil {
			// Some prefixes can be self-consistent; decoding them is
			// fine as long as nothing panics.
			continue
		}
	}
	if _, err := UnmarshalBinary(nil); err == nil {
		t.Error("nil input: want error")
	}
}
