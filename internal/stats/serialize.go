package stats

import (
	"encoding/binary"
	"errors"
	"sort"

	"repro/internal/hist"
	"repro/internal/hll"
)

// Relation statistics travel inside the segment footer (the paper's
// host system keeps them with the table's metadata pages), so a
// reopened segment plans queries with the same frequency counters,
// sketches, and histograms the in-memory relation had — without
// touching a single data block.

// ErrCorruptStats reports an undecodable statistics payload.
var ErrCorruptStats = errors.New("stats: corrupt serialized statistics")

// MarshalBinary serializes the statistics. Entries are emitted in
// sorted path order so equal statistics encode identically.
func (s *TableStats) MarshalBinary() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()

	var out []byte
	var tmp [8]byte
	pu32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		out = append(out, tmp[:4]...)
	}
	pu64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		out = append(out, tmp[:]...)
	}
	pstr := func(p string) {
		pu32(uint32(len(p)))
		out = append(out, p...)
	}

	pu32(uint32(s.freqSlots))
	pu32(uint32(s.sketchSlots))
	pu64(uint64(s.totalRows))
	pu64(uint64(s.tileSeq))

	pu32(uint32(len(s.freq)))
	for _, p := range sortedKeys(s.freq) {
		e := s.freq[p]
		pstr(p)
		pu64(uint64(e.count))
		pu64(uint64(e.lastTile))
	}

	pu32(uint32(len(s.sketches)))
	for _, p := range sortedKeys(s.sketches) {
		e := s.sketches[p]
		pstr(p)
		pu64(uint64(e.lastTile))
		regs := e.sketch.Registers()
		pu32(uint32(len(regs)))
		out = append(out, regs...)
	}

	pu32(uint32(len(s.histograms)))
	for _, p := range sortedKeys(s.histograms) {
		e := s.histograms[p]
		pstr(p)
		pu64(uint64(e.lastTile))
		out = e.hist.AppendBinary(out)
	}
	return out
}

// UnmarshalBinary reconstructs statistics serialized by MarshalBinary,
// validating every length field against the remaining buffer.
func UnmarshalBinary(b []byte) (*TableStats, error) {
	d := statsDecoder{b: b}
	freqSlots := int(d.u32())
	sketchSlots := int(d.u32())
	totalRows := int64(d.u64())
	tileSeq := int64(d.u64())
	// Slot bounds are trusted only within sane limits: a corrupt footer
	// must not pre-size unbounded maps.
	if d.err != nil || freqSlots < 0 || freqSlots > 1<<20 || sketchSlots < 0 || sketchSlots > 1<<20 {
		return nil, ErrCorruptStats
	}
	s := New(freqSlots, sketchSlots)
	s.totalRows = totalRows
	s.tileSeq = tileSeq

	nFreq := int(d.u32())
	for i := 0; i < nFreq && d.err == nil; i++ {
		p := d.str()
		count := int64(d.u64())
		last := int64(d.u64())
		if d.err == nil {
			s.freq[p] = &freqEntry{count: count, lastTile: last}
		}
	}
	nSketch := int(d.u32())
	for i := 0; i < nSketch && d.err == nil; i++ {
		p := d.str()
		last := int64(d.u64())
		regs := d.bytes(int(d.u32()))
		if d.err == nil {
			s.sketches[p] = &sketchEntry{sketch: hll.FromRegisters(regs), lastTile: last}
		}
	}
	nHist := int(d.u32())
	for i := 0; i < nHist && d.err == nil; i++ {
		p := d.str()
		last := int64(d.u64())
		hb := d.bytes(hist.BinarySize)
		if d.err != nil {
			break
		}
		h, ok := hist.FromBinary(hb)
		if !ok {
			return nil, ErrCorruptStats
		}
		s.histograms[p] = &histEntry{hist: h, lastTile: last}
	}
	if d.err != nil {
		return nil, ErrCorruptStats
	}
	return s, nil
}

type statsDecoder struct {
	b   []byte
	err error
}

func (d *statsDecoder) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.err = ErrCorruptStats
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *statsDecoder) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.err = ErrCorruptStats
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *statsDecoder) bytes(n int) []byte {
	if d.err != nil || n < 0 || len(d.b) < n {
		d.err = ErrCorruptStats
		return nil
	}
	v := d.b[:n:n]
	d.b = d.b[n:]
	return v
}

func (d *statsDecoder) str() string { return string(d.bytes(int(d.u32()))) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
