// Package stats maintains relation-level statistics aggregated from
// per-tile information (paper §4.6): a fixed number of key-path
// frequency counters and HyperLogLog sketches, with the paper's
// recency+frequency slot-replacement policy, plus the estimators the
// query optimizer consumes.
//
// The slot bounds (256 frequency counters, 64 sketches) cap optimizer
// memory regardless of how many distinct key paths the data contains.
package stats

import (
	"math"
	"sort"
	"sync"

	"repro/internal/hist"
	"repro/internal/hll"
	"repro/internal/tile"
)

// Defaults from the paper: "We suggest 64 sketches and 256 frequency
// counters as an upper bound on the statistics."
const (
	DefaultFreqSlots   = 256
	DefaultSketchSlots = 64
)

type freqEntry struct {
	count    int64
	lastTile int64 // tile sequence number of the last update
}

type sketchEntry struct {
	sketch   *hll.Sketch
	lastTile int64
}

type histEntry struct {
	hist     *hist.Histogram
	lastTile int64
}

// TableStats aggregates tile statistics for one relation. Safe for
// concurrent use: loading updates it from many workers while queries
// read estimates.
type TableStats struct {
	mu          sync.RWMutex
	freqSlots   int
	sketchSlots int
	freq        map[string]*freqEntry
	sketches    map[string]*sketchEntry
	histograms  map[string]*histEntry
	totalRows   int64
	tileSeq     int64
}

// New returns statistics with the given slot bounds (zero selects the
// paper's defaults).
func New(freqSlots, sketchSlots int) *TableStats {
	if freqSlots <= 0 {
		freqSlots = DefaultFreqSlots
	}
	if sketchSlots <= 0 {
		sketchSlots = DefaultSketchSlots
	}
	return &TableStats{
		freqSlots:   freqSlots,
		sketchSlots: sketchSlots,
		freq:        map[string]*freqEntry{},
		sketches:    map[string]*sketchEntry{},
		histograms:  map[string]*histEntry{},
	}
}

// AddTile folds one tile's frequency database and sketches into the
// relation statistics.
func (s *TableStats) AddTile(t *tile.Tile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tileSeq++
	seq := s.tileSeq
	s.totalRows += int64(t.NumRows())

	for path, count := range t.PathFrequencies() {
		if e, ok := s.freq[path]; ok {
			e.count += int64(count)
			e.lastTile = seq
			continue
		}
		if len(s.freq) < s.freqSlots {
			s.freq[path] = &freqEntry{count: int64(count), lastTile: seq}
			continue
		}
		// All slots utilized: replace the stalest slot (oldest tile,
		// then lowest count) — new values can overwrite existing ones
		// but the most frequent stay.
		victim := s.pickFreqVictim()
		if victim != "" && s.freq[victim].count < int64(count) {
			delete(s.freq, victim)
			s.freq[path] = &freqEntry{count: int64(count), lastTile: seq}
		}
	}

	for path, hg := range t.Histograms() {
		if e, ok := s.histograms[path]; ok {
			e.hist.Merge(hg)
			e.lastTile = seq
			continue
		}
		if len(s.histograms) < s.sketchSlots {
			cp := *hg
			s.histograms[path] = &histEntry{hist: &cp, lastTile: seq}
			continue
		}
		victim, vE := "", (*histEntry)(nil)
		for p, e := range s.histograms {
			if vE == nil || e.lastTile < vE.lastTile {
				victim, vE = p, e
			}
		}
		if victim != "" && vE.hist.Total() < hg.Total() {
			delete(s.histograms, victim)
			cp := *hg
			s.histograms[path] = &histEntry{hist: &cp, lastTile: seq}
		}
	}

	for path, sk := range t.Sketches() {
		if e, ok := s.sketches[path]; ok {
			e.sketch.Merge(sk)
			e.lastTile = seq
			continue
		}
		if len(s.sketches) < s.sketchSlots {
			s.sketches[path] = &sketchEntry{sketch: sk.Clone(), lastTile: seq}
			continue
		}
		victim := s.pickSketchVictim()
		if victim != "" {
			ve := s.sketches[victim]
			if ve.sketch.Estimate() < sk.Estimate() || ve.lastTile < seq-int64(s.sketchSlots) {
				delete(s.sketches, victim)
				s.sketches[path] = &sketchEntry{sketch: sk.Clone(), lastTile: seq}
			}
		}
	}
}

func (s *TableStats) pickFreqVictim() string {
	victim := ""
	var vE *freqEntry
	for p, e := range s.freq {
		if vE == nil || e.lastTile < vE.lastTile ||
			(e.lastTile == vE.lastTile && e.count < vE.count) ||
			(e.lastTile == vE.lastTile && e.count == vE.count && p < victim) {
			victim, vE = p, e
		}
	}
	return victim
}

func (s *TableStats) pickSketchVictim() string {
	victim := ""
	var vE *sketchEntry
	for p, e := range s.sketches {
		if vE == nil || e.lastTile < vE.lastTile {
			victim, vE = p, e
		}
	}
	return victim
}

// RowCount returns the total tuples folded in.
func (s *TableStats) RowCount() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.totalRows
}

// PathCount estimates how many tuples carry the path with a non-null
// value. A tracked path answers exactly; an untracked one answers with
// the smallest tracked counter — the paper's "the missing counter will
// behave most similarly to the key with the minimal frequency".
func (s *TableStats) PathCount(path string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.freq[path]; ok {
		return e.count
	}
	min := int64(-1)
	for _, e := range s.freq {
		if min < 0 || e.count < min {
			min = e.count
		}
	}
	if min < 0 {
		return s.totalRows // no statistics at all: assume present everywhere
	}
	return min
}

// HasPathStats reports whether the path has an exact frequency counter.
func (s *TableStats) HasPathStats(path string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.freq[path]
	return ok
}

// DistinctCount estimates the number of distinct non-null values of
// the path. Without a sketch it falls back to the path count (every
// value distinct — the conservative upper bound).
func (s *TableStats) DistinctCount(path string) float64 {
	s.mu.RLock()
	e, ok := s.sketches[path]
	s.mu.RUnlock()
	if ok {
		if est := e.sketch.Estimate(); est >= 1 {
			return est
		}
		return 1
	}
	c := s.PathCount(path)
	if c < 1 {
		return 1
	}
	return float64(c)
}

// Selectivity estimators used by the optimizer.

// SelEquality estimates the selectivity of path = constant: 1/d.
func (s *TableStats) SelEquality(path string) float64 {
	d := s.DistinctCount(path)
	if d < 1 {
		d = 1
	}
	sel := 1.0 / d
	// Scale by the fraction of tuples that carry the path at all.
	return sel * s.SelNotNull(path)
}

// SelNotNull estimates the selectivity of "path is not null".
func (s *TableStats) SelNotNull(path string) float64 {
	rows := s.RowCount()
	if rows == 0 {
		return 1
	}
	f := float64(s.PathCount(path)) / float64(rows)
	if f > 1 {
		f = 1
	}
	return f
}

// SelRange estimates a range predicate's selectivity. Without a
// histogram the classic System-R default of 1/3 is used, scaled by
// path presence.
func (s *TableStats) SelRange(path string) float64 {
	return s.SelNotNull(path) / 3
}

// SelLess estimates the selectivity of path < x using the aggregated
// histogram when one exists; otherwise the SelRange default.
func (s *TableStats) SelLess(path string, x float64) float64 {
	s.mu.RLock()
	e, ok := s.histograms[path]
	s.mu.RUnlock()
	if !ok {
		return s.SelRange(path)
	}
	return e.hist.SelLess(x) * s.SelNotNull(path)
}

// SelGreater estimates the selectivity of path > x.
func (s *TableStats) SelGreater(path string, x float64) float64 {
	s.mu.RLock()
	e, ok := s.histograms[path]
	s.mu.RUnlock()
	if !ok {
		return s.SelRange(path)
	}
	return e.hist.SelGreater(x) * s.SelNotNull(path)
}

// Histogram returns the aggregated histogram of a path (nil if
// untracked) for diagnostics.
func (s *TableStats) Histogram(path string) *hist.Histogram {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.histograms[path]; ok {
		return e.hist
	}
	return nil
}

// JoinCardinality estimates |R ⋈ S| on R.path = S.path using the
// textbook distinct-value formula |R|·|S| / max(dR, dS).
func JoinCardinality(rRows, sRows float64, rDistinct, sDistinct float64) float64 {
	d := math.Max(rDistinct, sDistinct)
	if d < 1 {
		d = 1
	}
	return rRows * sRows / d
}

// TrackedPaths returns the paths with exact counters, most frequent
// first (diagnostics and reports).
func (s *TableStats) TrackedPaths() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	paths := make([]string, 0, len(s.freq))
	for p := range s.freq {
		paths = append(paths, p)
	}
	sort.Slice(paths, func(i, j int) bool {
		a, b := s.freq[paths[i]], s.freq[paths[j]]
		if a.count != b.count {
			return a.count > b.count
		}
		return paths[i] < paths[j]
	})
	return paths
}

// SketchCount returns how many sketch slots are in use.
func (s *TableStats) SketchCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sketches)
}
