// Package jsontape implements an On-Demand JSON parser (Keiser &
// Lemire, "On-Demand JSON: A Better Way to Parse Documents"): a
// single validating pass over the input produces one flat []uint64
// tape of token kinds and byte offsets, and everything else — integer
// and float conversion, string unescaping, UTF-8 sanitizing, tree
// materialization — happens lazily, only when a consumer actually
// keeps the value. Tile extraction walks the tape in document order
// and skips subtrees it does not extract, so ingest never builds a
// jsonvalue tree on the hot path.
//
// The parser accepts and rejects exactly the same documents as
// jsontext.Parse (the correctness oracle; FuzzTapeVsTree enforces
// this), and lazily decoded values are byte-for-byte identical to the
// tree parser's. Inputs that exceed the tape's packed-word limits
// (offsets ≥ 4 GiB, spans or container counts ≥ 2^28) return a
// *LimitError so callers can fall back to the tree parser.
//
// Tape layout: one word per node, packed as
//
//	kind(4 bits, 60-63) | aux(28 bits, 32-59) | pos(32 bits, 0-31)
//
//	kind        aux            pos
//	KNull       0              byte offset of literal
//	KTrue       0              byte offset of literal
//	KFalse      0              byte offset of literal
//	KInt        literal len    byte offset of literal (lazy ParseInt)
//	KFloat      literal len    byte offset of literal (lazy ParseFloat)
//	KFloatPre   literal len    byte offset; next word = Float64bits
//	KString     content len    byte offset of content (no escapes)
//	KStringEsc  content len    byte offset of content (has escapes)
//	KKey        content len    byte offset of content (no escapes)
//	KKeyEsc     content len    byte offset of content (has escapes)
//	KObj        member count   tape index one past the subtree
//	KArr        element count  tape index one past the subtree
//
// KFloatPre is the only two-word node: floats whose decimal exponent
// could overflow float64 are converted eagerly at parse time (the
// conversion doubles as the range check) and the bits stored inline.
// Everything else is one word, so skipping a subtree is one load:
// containers store their end index, scalars advance by their width.
package jsontape

import (
	"math"
)

// Kind identifies a tape node.
type Kind uint8

const (
	KInvalid Kind = iota
	KNull
	KTrue
	KFalse
	KInt
	KFloat
	KFloatPre
	KString
	KStringEsc
	KKey
	KKeyEsc
	KObj
	KArr
)

func (k Kind) String() string {
	switch k {
	case KNull:
		return "null"
	case KTrue, KFalse:
		return "bool"
	case KInt:
		return "int"
	case KFloat, KFloatPre:
		return "float"
	case KString, KStringEsc:
		return "string"
	case KKey, KKeyEsc:
		return "key"
	case KObj:
		return "object"
	case KArr:
		return "array"
	}
	return "invalid"
}

const (
	kindShift = 60
	auxShift  = 32
	auxMask   = 1<<28 - 1
	posMask   = 1<<32 - 1
)

func pack(k Kind, aux, pos int) uint64 {
	return uint64(k)<<kindShift | uint64(aux)<<auxShift | uint64(pos)
}

// Doc is one parsed document: the raw input plus its structural tape.
// A Doc is reusable — Parse resets it in place, retaining the tape
// buffer — and aliases the input bytes, which must stay immutable for
// the Doc's lifetime.
type Doc struct {
	Data []byte
	Tape []uint64
}

// Root returns the document's root node.
func (d *Doc) Root() Node { return Node{d, 0} }

// At returns the node at tape index i.
func (d *Doc) At(i int) Node { return Node{d, i} }

// KindAt returns the kind of the node at tape index i.
func (d *Doc) KindAt(i int) Kind { return Kind(d.Tape[i] >> kindShift) }

// Skip returns the tape index of the node following the subtree
// rooted at i: containers jump past their contents in O(1), scalars
// advance by their word width.
func (d *Doc) Skip(i int) int {
	w := d.Tape[i]
	switch Kind(w >> kindShift) {
	case KObj, KArr:
		return int(w & posMask)
	case KFloatPre:
		return i + 2
	default:
		return i + 1
	}
}

// Node is a cursor over one tape entry. Iterate containers with Skip:
//
//	obj := d.At(i)                    // KObj with obj.Count() members
//	j := i + 1
//	for k := 0; k < obj.Count(); k++ {
//		key, val := d.At(j), d.At(j+1) // keys are always one word
//		j = d.Skip(j + 1)
//	}
type Node struct {
	d *Doc
	i int
}

// Index returns the node's tape index.
func (n Node) Index() int { return n.i }

// Doc returns the document the node belongs to.
func (n Node) Doc() *Doc { return n.d }

// Kind returns the node's kind.
func (n Node) Kind() Kind { return Kind(n.d.Tape[n.i] >> kindShift) }

func (n Node) aux() int { return int(n.d.Tape[n.i] >> auxShift & auxMask) }
func (n Node) pos() int { return int(n.d.Tape[n.i] & posMask) }

// Count returns the member count of an object node or the element
// count of an array node.
func (n Node) Count() int { return n.aux() }

// End returns the tape index one past the subtree rooted at this
// node.
func (n Node) End() int { return n.d.Skip(n.i) }

// IsNull reports whether the node is a JSON null.
func (n Node) IsNull() bool { return n.Kind() == KNull }

// BoolVal returns the value of a boolean node.
func (n Node) BoolVal() bool { return n.Kind() == KTrue }

// Literal returns the raw bytes of a number literal.
func (n Node) Literal() []byte {
	return n.d.Data[n.pos() : n.pos()+n.aux()]
}

// IntVal decodes an integer node. The literal was range-checked at
// parse time, so the manual accumulation cannot overflow.
func (n Node) IntVal() int64 {
	lit := n.Literal()
	j := 0
	neg := lit[0] == '-'
	if neg {
		j = 1
	}
	var acc uint64
	for ; j < len(lit); j++ {
		acc = acc*10 + uint64(lit[j]-'0')
	}
	if neg {
		return -int64(acc)
	}
	return int64(acc)
}

// FloatVal decodes a float node. KFloatPre carries the eagerly
// converted bits inline; KFloat literals were proven in-range at
// parse time, so the lazy conversion cannot fail.
func (n Node) FloatVal() float64 {
	if n.Kind() == KFloatPre {
		return math.Float64frombits(n.d.Tape[n.i+1])
	}
	return parseFloatBytes(n.Literal())
}

// RawString returns the undecoded content bytes of a string or key
// node (the span between the quotes) and whether it contains escapes.
func (n Node) RawString() (raw []byte, escaped bool) {
	k := n.Kind()
	return n.d.Data[n.pos() : n.pos()+n.aux()], k == KStringEsc || k == KKeyEsc
}
