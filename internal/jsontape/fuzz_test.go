package jsontape_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/jsonb"
	"repro/internal/jsontape"
	"repro/internal/jsontext"
)

// FuzzTapeVsTree is the tape parser's differential oracle: for every
// input, the tape parse and jsontext.Parse must agree on
// accept/reject (same SyntaxError offset and message), and when both
// accept, fully materializing the tape must reproduce the tree
// byte-for-byte (compared via Equal and via serialization, which also
// covers -0 vs 0 and string sanitizing).
func FuzzTapeVsTree(f *testing.F) {
	seeds := []string{
		// The jsonb ingest fuzz corpus seeds.
		`{}`, `[]`, `null`, `0`, `-0.5e2`, `"str"`,
		`{"id":1,"user":{"id":3,"tags":["a","b"]},"geo":null}`,
		`[{"a":[[]]},2,"x"]`,
		`{"n":"12.50","big":9223372036854775807}`,
		"{\"u\":\"\\u00e9\\ud83d\\ude00\"}",
		`{"dup":1,"dup":2}`,
		"[1,2",
		`{"a":`,
		"\"\\ud800\"",
		// Deep nesting (around the MaxDepth boundary).
		strings.Repeat("[", 600) + strings.Repeat("]", 600),
		strings.Repeat(`{"a":`, 511) + "1" + strings.Repeat("}", 511),
		// Long escape runs and surrogate edge cases.
		`"` + strings.Repeat(`\u0041\n\t`, 50) + `"`,
		"\"\\ud800\\udc00\"", "\"\\ud800\\ud800\"", "\"\\udc00x\"",
		"\"\\ud800\\u0041\"", "\"\\ud800\\\"",
		// Big and boundary numbers.
		"1e308", "2e308", "-1e309", "1e-999", "0.0e99999",
		"17976931348623157e292", "9223372036854775808",
		"-9223372036854775809", "999999999999999999", "1000000000000000000",
		strings.Repeat("9", 400), "0." + strings.Repeat("0", 400) + "1e420",
		// Invalid UTF-8 in raw and escaped strings.
		"\"\xff\xfe\"", "\"a\\n\xff\"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		treeVal, treeErr := jsontext.Parse(data)
		var d jsontape.Doc
		tapeErr := jsontape.Parse(data, &d)
		if jsontape.IsLimit(tapeErr) {
			t.Fatalf("limit error on small input %q: %v", data, tapeErr)
		}
		if (treeErr == nil) != (tapeErr == nil) {
			t.Fatalf("accept/reject mismatch on %q: tree=%v tape=%v", data, treeErr, tapeErr)
		}
		if treeErr != nil {
			if treeErr.Error() != tapeErr.Error() {
				t.Fatalf("error mismatch on %q: tree=%v tape=%v", data, treeErr, tapeErr)
			}
			return
		}
		tapeVal := d.Root().Materialize()
		if !tapeVal.Equal(treeVal) {
			t.Fatalf("materialized tape differs from tree on %q:\n tape=%s\n tree=%s",
				data, jsontext.Serialize(tapeVal), jsontext.Serialize(treeVal))
		}
		if got, want := jsontext.Serialize(tapeVal), jsontext.Serialize(treeVal); string(got) != string(want) {
			t.Fatalf("serialization differs on %q: tape=%q tree=%q", data, got, want)
		}
		// The tape-driven JSONB encoder must match the tree encoder
		// byte for byte.
		var enc jsonb.Encoder
		if got, want := enc.EncodeTape(&d), jsonb.Encode(treeVal); !bytes.Equal(got, want) {
			t.Fatalf("EncodeTape differs on %q:\n got=%x\nwant=%x", data, got, want)
		}
	})
}
