package jsontape

import (
	"unicode/utf8"

	"repro/internal/jsonvalue"
)

// Materialize builds the jsonvalue tree for the subtree rooted at
// this node. The result is identical to what jsontext.Parse would
// have produced for the same input — the tape path's correctness
// oracle, and the boxed fallback for heterogeneous outlier documents.
func (n Node) Materialize() jsonvalue.Value {
	switch n.Kind() {
	case KNull:
		return jsonvalue.Null()
	case KTrue:
		return jsonvalue.Bool(true)
	case KFalse:
		return jsonvalue.Bool(false)
	case KInt:
		return jsonvalue.Int(n.IntVal())
	case KFloat, KFloatPre:
		return jsonvalue.Float(n.FloatVal())
	case KString, KStringEsc:
		return jsonvalue.String(n.StringVal())
	case KObj:
		members := make([]jsonvalue.Member, 0, n.Count())
		j := n.i + 1
		for k := 0; k < n.Count(); k++ {
			key := Node{n.d, j}
			val := Node{n.d, j + 1}
			members = append(members, jsonvalue.Member{Key: key.StringVal(), Value: val.Materialize()})
			j = n.d.Skip(j + 1)
		}
		return jsonvalue.Object(members...)
	case KArr:
		elems := make([]jsonvalue.Value, 0, n.Count())
		j := n.i + 1
		for k := 0; k < n.Count(); k++ {
			elems = append(elems, Node{n.d, j}.Materialize())
			j = n.d.Skip(j)
		}
		return jsonvalue.Array(elems...)
	}
	return jsonvalue.Null()
}

// Member returns the value of the first member with the given key in
// an object node, decoding keys lazily (raw bytes are compared
// directly when the stored key needs no decoding).
func (n Node) Member(key string) (Node, bool) {
	if n.Kind() != KObj {
		return Node{}, false
	}
	j := n.i + 1
	for k := 0; k < n.Count(); k++ {
		kn := Node{n.d, j}
		val := Node{n.d, j + 1}
		if kn.keyEqual(key) {
			return val, true
		}
		j = n.d.Skip(j + 1)
	}
	return Node{}, false
}

func (kn Node) keyEqual(key string) bool {
	raw, escaped := kn.RawString()
	if !escaped {
		// The decoded form of an unescaped key only differs from raw
		// when raw is invalid UTF-8 (U+FFFD substitution).
		if bstr(raw) == key {
			return true
		}
		if utf8.Valid(raw) {
			return false
		}
	}
	return kn.StringVal() == key
}

// Elem returns the k'th element of an array node, walking from the
// start (O(k) skips).
func (n Node) Elem(k int) (Node, bool) {
	if n.Kind() != KArr || k < 0 || k >= n.Count() {
		return Node{}, false
	}
	j := n.i + 1
	for ; k > 0; k-- {
		j = n.d.Skip(j)
	}
	return Node{n.d, j}, true
}
