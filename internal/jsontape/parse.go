package jsontape

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"repro/internal/jsontext"
)

// LimitError reports input that exceeds the tape's packed-word limits
// (byte offsets ≥ 4 GiB, string/number spans or container counts
// ≥ 2^28). Such documents are still valid JSON — callers fall back to
// the tree parser, which has no encoding limits.
type LimitError struct{ What string }

func (e *LimitError) Error() string {
	return fmt.Sprintf("jsontape: %s exceeds tape limits", e.What)
}

// IsLimit reports whether err is a *LimitError.
func IsLimit(err error) bool {
	var le *LimitError
	return errors.As(err, &le)
}

var (
	maxSpan = 1<<28 - 1
	maxOff  = 1<<32 - 1
)

// SetLimitsForTesting shrinks the tape encoding limits so tests can
// exercise the LimitError fallback path without gigabyte inputs. The
// returned func restores the real limits.
func SetLimitsForTesting(span, off int) (restore func()) {
	oldSpan, oldOff := maxSpan, maxOff
	maxSpan, maxOff = span, off
	return func() { maxSpan, maxOff = oldSpan, oldOff }
}

// Parse parses one JSON document into d, resetting it in place (the
// tape buffer is reused across calls; d.Data aliases data). It
// accepts and rejects exactly the inputs jsontext.Parse does,
// returning the same *jsontext.SyntaxError offsets and messages,
// except for over-limit documents which return *LimitError.
func Parse(data []byte, d *Doc) error {
	d.Data = data
	if d.Tape != nil {
		d.Tape = d.Tape[:0]
	}
	if len(data) > maxOff {
		return &LimitError{"document size"}
	}
	p := tapeParser{data: data, tape: d.Tape}
	p.skipSpace()
	err := p.parseValue()
	d.Tape = p.tape
	if err != nil {
		d.Tape = d.Tape[:0]
		return err
	}
	p.skipSpace()
	if p.pos != len(p.data) {
		d.Tape = d.Tape[:0]
		return p.errf("trailing data after document")
	}
	return nil
}

// Validate reports whether data is a valid JSON document, using a
// scratch tape. Over-limit documents return *LimitError like Parse.
func Validate(data []byte) error {
	var d Doc
	return Parse(data, &d)
}

type tapeParser struct {
	data  []byte
	pos   int
	depth int
	tape  []uint64
}

func (p *tapeParser) errf(format string, args ...any) error {
	return &jsontext.SyntaxError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *tapeParser) skipSpace() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *tapeParser) parseValue() error {
	if p.pos >= len(p.data) {
		return p.errf("unexpected end of input")
	}
	switch c := p.data[p.pos]; {
	case c == '{':
		return p.parseObject()
	case c == '[':
		return p.parseArray()
	case c == '"':
		return p.parseString(KString, KStringEsc)
	case c == 't':
		return p.literal("true", KTrue)
	case c == 'f':
		return p.literal("false", KFalse)
	case c == 'n':
		return p.literal("null", KNull)
	case c == '-' || (c >= '0' && c <= '9'):
		return p.parseNumber()
	default:
		return p.errf("unexpected character %q", c)
	}
}

func (p *tapeParser) literal(lit string, k Kind) error {
	if p.pos+len(lit) > len(p.data) || string(p.data[p.pos:p.pos+len(lit)]) != lit {
		return p.errf("invalid literal, expected %q", lit)
	}
	p.tape = append(p.tape, pack(k, 0, p.pos))
	p.pos += len(lit)
	return nil
}

// patchContainer finalizes the container word reserved at slot.
func (p *tapeParser) patchContainer(k Kind, slot, count int) error {
	end := len(p.tape)
	if count > maxSpan {
		return &LimitError{"container size"}
	}
	if end > maxOff {
		return &LimitError{"tape size"}
	}
	p.tape[slot] = pack(k, count, end)
	return nil
}

func (p *tapeParser) parseObject() error {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > jsontext.MaxDepth {
		return p.errf("nesting too deep (> %d)", jsontext.MaxDepth)
	}
	slot := len(p.tape)
	p.tape = append(p.tape, 0)
	p.pos++ // consume '{'
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == '}' {
		p.pos++
		return p.patchContainer(KObj, slot, 0)
	}
	count := 0
	for {
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != '"' {
			return p.errf("expected object key string")
		}
		if err := p.parseString(KKey, KKeyEsc); err != nil {
			return err
		}
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != ':' {
			return p.errf("expected ':' after object key")
		}
		p.pos++
		p.skipSpace()
		if err := p.parseValue(); err != nil {
			return err
		}
		count++
		p.skipSpace()
		if p.pos >= len(p.data) {
			return p.errf("unterminated object")
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return p.patchContainer(KObj, slot, count)
		default:
			return p.errf("expected ',' or '}' in object")
		}
	}
}

func (p *tapeParser) parseArray() error {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > jsontext.MaxDepth {
		return p.errf("nesting too deep (> %d)", jsontext.MaxDepth)
	}
	slot := len(p.tape)
	p.tape = append(p.tape, 0)
	p.pos++ // consume '['
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == ']' {
		p.pos++
		return p.patchContainer(KArr, slot, 0)
	}
	count := 0
	for {
		p.skipSpace()
		if err := p.parseValue(); err != nil {
			return err
		}
		count++
		p.skipSpace()
		if p.pos >= len(p.data) {
			return p.errf("unterminated array")
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return p.patchContainer(KArr, slot, count)
		default:
			return p.errf("expected ',' or ']' in array")
		}
	}
}

// parseString validates a string starting at the opening quote and
// appends one word with the raw content span; decoding is deferred.
// Every escape is checked independently — exactly the checks the tree
// parser's decode loop applies, so accept/reject matches even though
// no bytes are produced here (surrogate pairing never rejects in the
// oracle: an unpaired surrogate decodes to U+FFFD).
func (p *tapeParser) parseString(plain, escaped Kind) error {
	p.pos++ // consume '"'
	start := p.pos
	// Fast path: scan for the closing quote with no escapes.
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		if c == '"' {
			return p.emitString(plain, start, p.pos)
		}
		if c == '\\' || c < 0x20 {
			goto slow
		}
		p.pos++
	}
	return p.errf("unterminated string")
slow:
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			return p.emitString(escaped, start, p.pos)
		case c < 0x20:
			return p.errf("unescaped control character 0x%02x in string", c)
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return p.errf("unterminated escape")
			}
			switch e := p.data[p.pos]; e {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				p.pos++
			case 'u':
				if err := p.checkHex4(); err != nil {
					return err
				}
			default:
				return p.errf("invalid escape character %q", e)
			}
		default:
			p.pos++
		}
	}
	return p.errf("unterminated string")
}

func (p *tapeParser) emitString(k Kind, start, end int) error {
	if end-start > maxSpan {
		return &LimitError{"string length"}
	}
	p.tape = append(p.tape, pack(k, end-start, start))
	p.pos = end + 1 // consume closing quote
	return nil
}

// checkHex4 validates the four hex digits after \u; the cursor is on
// the 'u'. Offsets match the oracle's hex4.
func (p *tapeParser) checkHex4() error {
	p.pos++ // consume 'u'
	if p.pos+4 > len(p.data) {
		return p.errf("truncated \\u escape")
	}
	for i := 0; i < 4; i++ {
		c := p.data[p.pos+i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return p.errf("invalid hex digit %q in \\u escape", c)
		}
	}
	p.pos += 4
	return nil
}

// parseNumber scans the RFC 8259 number grammar and classifies the
// literal:
//
//   - non-float literals of ≤ 18 digits fit int64 by construction and
//     become lazy KInt; longer ones are converted eagerly (KInt on
//     success, else they degrade to float like the oracle);
//   - float literals whose leading decimal exponent is ≤ 307 cannot
//     overflow float64 and become lazy KFloat (underflow is not an
//     error: strconv.ParseFloat flushes tiny values to ±0 silently,
//     so no lower bound is needed);
//   - everything else is converted eagerly, which doubles as the
//     range check, and stored as two-word KFloatPre.
func (p *tapeParser) parseNumber() error {
	start := p.pos
	if p.data[p.pos] == '-' {
		p.pos++
	}
	// int part
	if p.pos >= len(p.data) {
		return p.errf("truncated number")
	}
	intStart := p.pos
	switch {
	case p.data[p.pos] == '0':
		p.pos++
	case p.data[p.pos] >= '1' && p.data[p.pos] <= '9':
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
		}
	default:
		return p.errf("invalid number")
	}
	intEnd := p.pos
	isFloat := false
	fracStart, fracEnd := 0, 0
	// fraction
	if p.pos < len(p.data) && p.data[p.pos] == '.' {
		isFloat = true
		p.pos++
		if p.pos >= len(p.data) || p.data[p.pos] < '0' || p.data[p.pos] > '9' {
			return p.errf("digit expected after decimal point")
		}
		fracStart = p.pos
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
		}
		fracEnd = p.pos
	}
	// exponent
	expVal, expNeg := 0, false
	if p.pos < len(p.data) && (p.data[p.pos] == 'e' || p.data[p.pos] == 'E') {
		isFloat = true
		p.pos++
		if p.pos < len(p.data) && (p.data[p.pos] == '+' || p.data[p.pos] == '-') {
			expNeg = p.data[p.pos] == '-'
			p.pos++
		}
		if p.pos >= len(p.data) || p.data[p.pos] < '0' || p.data[p.pos] > '9' {
			return p.errf("digit expected in exponent")
		}
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			if expVal < 1e6 {
				expVal = expVal*10 + int(p.data[p.pos]-'0')
			}
			p.pos++
		}
		if expNeg {
			expVal = -expVal
		}
	}
	if p.pos-start > maxSpan {
		return &LimitError{"number length"}
	}
	if !isFloat {
		if intEnd-intStart <= 18 {
			p.tape = append(p.tape, pack(KInt, p.pos-start, start))
			return nil
		}
		if _, err := strconv.ParseInt(string(p.data[start:p.pos]), 10, 64); err == nil {
			p.tape = append(p.tape, pack(KInt, p.pos-start, start))
			return nil
		}
		// Out-of-range integer literals degrade to float, like the
		// oracle.
	}
	// Decimal exponent of the leading significant digit: value
	// < 10^(decExp+1), so decExp ≤ 307 guarantees no overflow.
	sig := -1 // decimal exponent of first significant digit, pre-E
	for j := intStart; j < intEnd; j++ {
		if p.data[j] != '0' {
			sig = intEnd - 1 - j
			break
		}
	}
	if sig < 0 {
		sig = math.MinInt
		for j := fracStart; j < fracEnd; j++ {
			if p.data[j] != '0' {
				sig = -(j - fracStart + 1)
				break
			}
		}
		if sig == math.MinInt {
			// All digits zero: the value is ±0 regardless of exponent.
			p.tape = append(p.tape, pack(KFloat, p.pos-start, start))
			return nil
		}
	}
	if sig+expVal <= 307 {
		p.tape = append(p.tape, pack(KFloat, p.pos-start, start))
		return nil
	}
	lit := string(p.data[start:p.pos])
	f, err := strconv.ParseFloat(lit, 64)
	if err != nil || math.IsInf(f, 0) {
		return p.errf("number %q out of range", lit)
	}
	p.tape = append(p.tape, pack(KFloatPre, p.pos-start, start))
	p.tape = append(p.tape, math.Float64bits(f))
	return nil
}
