package jsontape_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/jsontape"
	"repro/internal/jsontext"
)

// corpus exercises every tape kind, lazy-decode boundary, and skip
// shape; parity tests below run each document through both parsers.
var corpus = []string{
	`null`, `true`, `false`, `0`, `-0`, `42`, `-42`,
	`999999999999999999`, `1000000000000000000`, `9223372036854775807`,
	`-9223372036854775808`, `9223372036854775808`, `-9223372036854775809`,
	`0.5`, `-0.5e2`, `1e308`, `1.7976931348623157e308`, `1e-999`, `-1e-999`,
	`0.0e99999`, `17976931348623157e292`, `0e0`, `10.25`,
	`""`, `"plain"`, `"\n\t\\\"\/"`, `"Aé中"`,
	`"😀"`, `"\ud800"`, `"\udc00"`, `"\ud800𐀀"`,
	`{}`, `[]`, `[null]`, `[[[[1]]]]`,
	`{"a":1,"b":{"c":[1,2.5,"x",true,null]},"d":[]}`,
	`{"dup":1,"dup":"two"}`,
	`{"":{"":1}}`,
	`[0,[1,[2,[3]]],{"k":[{"n":{}}]},"tail"]`,
	` { "ws" : [ 1 , 2 ] } `,
}

var invalid = []string{
	``, ` `, `tru`, `nulll`, `{`, `[`, `{"a"}`, `{"a":}`, `{"a":1,}`,
	`[1,]`, `[1 2]`, `"unterminated`, `"bad \x escape"`, `"\u12g4"`,
	`"\ud800\uzzzz"`, "\"ctrl\x01\"", `01`, `1.`, `1e`, `1e+`, `-`,
	`2e308`, `-1e309`, strings.Repeat("9", 400), `{"a":1}x`, `[1] [2]`,
	strings.Repeat("[", 513) + strings.Repeat("]", 513),
}

func TestParseParity(t *testing.T) {
	for _, src := range append(append([]string{}, corpus...), invalid...) {
		treeVal, treeErr := jsontext.Parse([]byte(src))
		var d jsontape.Doc
		tapeErr := jsontape.Parse([]byte(src), &d)
		if (treeErr == nil) != (tapeErr == nil) {
			t.Fatalf("%q: accept/reject mismatch: tree=%v tape=%v", src, treeErr, tapeErr)
		}
		if treeErr != nil {
			if treeErr.Error() != tapeErr.Error() {
				t.Errorf("%q: error text mismatch:\n tree=%v\n tape=%v", src, treeErr, tapeErr)
			}
			continue
		}
		got := d.Root().Materialize()
		if !got.Equal(treeVal) {
			t.Errorf("%q: materialize mismatch: tape=%s tree=%s",
				src, jsontext.Serialize(got), jsontext.Serialize(treeVal))
		}
		if g, w := jsontext.Serialize(got), jsontext.Serialize(treeVal); string(g) != string(w) {
			t.Errorf("%q: serialization mismatch: tape=%q tree=%q", src, g, w)
		}
	}
}

func TestMaxDepthBoundary(t *testing.T) {
	ok := strings.Repeat("[", 512) + strings.Repeat("]", 512)
	if err := jsontape.Validate([]byte(ok)); err != nil {
		t.Fatalf("depth 512 should parse: %v", err)
	}
	bad := strings.Repeat("[", 513) + strings.Repeat("]", 513)
	err := jsontape.Validate([]byte(bad))
	var se *jsontext.SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("depth 513 should fail with SyntaxError, got %v", err)
	}
}

func TestDocReuse(t *testing.T) {
	var d jsontape.Doc
	if err := jsontape.Parse([]byte(`{"a":[1,2,3],"b":"x"}`), &d); err != nil {
		t.Fatal(err)
	}
	first := len(d.Tape)
	if err := jsontape.Parse([]byte(`[true]`), &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Tape) >= first {
		t.Fatalf("tape not reset on reuse: %d -> %d", first, len(d.Tape))
	}
	if got := d.Root().Materialize(); jsontext.SerializeString(got) != `[true]` {
		t.Fatalf("reused doc materialized wrong: %s", jsontext.Serialize(got))
	}
}

func TestCursorAndSkip(t *testing.T) {
	var d jsontape.Doc
	src := `{"a":{"deep":[1,2,3]},"b":7,"c":[{"x":1},"s"],"d":null}`
	if err := jsontape.Parse([]byte(src), &d); err != nil {
		t.Fatal(err)
	}
	root := d.Root()
	if root.Kind() != jsontape.KObj || root.Count() != 4 {
		t.Fatalf("root: kind=%v count=%d", root.Kind(), root.Count())
	}
	// Walk members, skipping subtrees, and collect keys.
	var keys []string
	j := root.Index() + 1
	for k := 0; k < root.Count(); k++ {
		keys = append(keys, d.At(j).StringVal())
		j = d.Skip(j + 1)
	}
	if strings.Join(keys, ",") != "a,b,c,d" {
		t.Fatalf("keys = %v", keys)
	}
	if j != root.End() {
		t.Fatalf("skip walk ended at %d, want %d", j, root.End())
	}
	b, ok := root.Member("b")
	if !ok || b.Kind() != jsontape.KInt || b.IntVal() != 7 {
		t.Fatalf("Member(b) = %v ok=%v", b.Kind(), ok)
	}
	c, _ := root.Member("c")
	el, ok := c.Elem(1)
	if !ok || el.StringVal() != "s" {
		t.Fatalf("c[1] = %q ok=%v", el.StringVal(), ok)
	}
	if _, ok := c.Elem(2); ok {
		t.Fatal("out-of-range Elem should fail")
	}
	if _, ok := root.Member("nope"); ok {
		t.Fatal("missing Member should fail")
	}
}

func TestMemberDecodedKeys(t *testing.T) {
	var d jsontape.Doc
	if err := jsontape.Parse([]byte(`{"é":1,"dup":2,"dup":3,"":4}`), &d); err != nil {
		t.Fatal(err)
	}
	root := d.Root()
	if v, ok := root.Member("é"); !ok || v.IntVal() != 1 {
		t.Fatal("escaped key lookup failed")
	}
	if v, ok := root.Member("dup"); !ok || v.IntVal() != 2 {
		t.Fatal("duplicate key lookup should return the first member")
	}
	if v, ok := root.Member(""); !ok || v.IntVal() != 4 {
		t.Fatal("empty key lookup failed")
	}
}

func TestLimitFallback(t *testing.T) {
	restore := jsontape.SetLimitsForTesting(4, 1<<32-1)
	defer restore()
	err := jsontape.Validate([]byte(`"longer than four"`))
	if !jsontape.IsLimit(err) {
		t.Fatalf("want LimitError for long string under test limits, got %v", err)
	}
	if err := jsontape.Validate([]byte(`"ok"`)); err != nil {
		t.Fatalf("short string should still parse: %v", err)
	}
	restore()
	if err := jsontape.Validate([]byte(`"longer than four"`)); err != nil {
		t.Fatalf("restored limits should accept: %v", err)
	}
}

func TestLazyDecodeValues(t *testing.T) {
	var d jsontape.Doc
	src := `[999999999999999999,-999999999999999999,9223372036854775807,1e-999,2.5,1e308]`
	if err := jsontape.Parse([]byte(src), &d); err != nil {
		t.Fatal(err)
	}
	root := d.Root()
	wantInts := []int64{999999999999999999, -999999999999999999, 9223372036854775807}
	for i, w := range wantInts {
		el, _ := root.Elem(i)
		if el.Kind() != jsontape.KInt || el.IntVal() != w {
			t.Fatalf("elem %d: kind=%v val=%d want %d", i, el.Kind(), el.IntVal(), w)
		}
	}
	wantFloats := []float64{0, 2.5, 1e308}
	for i, w := range wantFloats {
		el, _ := root.Elem(3 + i)
		if el.FloatVal() != w {
			t.Fatalf("float elem %d: %v want %v", 3+i, el.FloatVal(), w)
		}
	}
}

func TestAppendStringMatchesStringVal(t *testing.T) {
	srcs := []string{`"plain"`, `"\nA"`, `"\ud800"`, "\"\xff raw\"", `"mix😀\xyz"`}
	for _, src := range srcs {
		var d jsontape.Doc
		if err := jsontape.Parse([]byte(src), &d); err != nil {
			continue // some seeds intentionally invalid
		}
		n := d.Root()
		if got := string(n.AppendString(nil)); got != n.StringVal() {
			t.Errorf("%q: AppendString=%q StringVal=%q", src, got, n.StringVal())
		}
		if got := string(n.ContentBytes()); got != n.StringVal() {
			t.Errorf("%q: ContentBytes=%q StringVal=%q", src, got, n.StringVal())
		}
	}
}
