package jsontape

import (
	"bytes"
	"strconv"
	"strings"
	"unicode/utf16"
	"unicode/utf8"
	"unsafe"
)

// bstr views b as a string without copying; b must not be mutated
// while the string is live (we only pass it to strconv, which does
// not retain it).
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

func parseFloatBytes(lit []byte) float64 {
	f, _ := strconv.ParseFloat(bstr(lit), 64)
	return f
}

var utf8Replacement = []byte("�")

// StringVal decodes a string or key node: escapes resolved, invalid
// UTF-8 replaced with U+FFFD — byte-identical to the tree parser's
// parseString.
func (n Node) StringVal() string {
	raw, escaped := n.RawString()
	if !escaped {
		s := string(raw)
		if utf8.ValidString(s) {
			return s
		}
		return strings.ToValidUTF8(s, "�")
	}
	s := string(appendUnescaped(make([]byte, 0, len(raw)), raw))
	if utf8.ValidString(s) {
		return s
	}
	return strings.ToValidUTF8(s, "�")
}

// AppendString appends the decoded string content to dst and returns
// the extended slice.
func (n Node) AppendString(dst []byte) []byte {
	raw, escaped := n.RawString()
	if !escaped {
		if utf8.Valid(raw) {
			return append(dst, raw...)
		}
		return append(dst, bytes.ToValidUTF8(raw, utf8Replacement)...)
	}
	mark := len(dst)
	dst = appendUnescaped(dst, raw)
	if !utf8.Valid(dst[mark:]) {
		fixed := bytes.ToValidUTF8(dst[mark:], utf8Replacement)
		dst = append(dst[:mark], fixed...)
	}
	return dst
}

// ContentBytes returns the decoded content of a string or key node.
// The result aliases the document's backing data when no decoding is
// needed, so it must be treated as immutable.
func (n Node) ContentBytes() []byte {
	raw, escaped := n.RawString()
	if !escaped && utf8.Valid(raw) {
		return raw
	}
	return n.AppendString(nil)
}

// appendUnescaped resolves the escapes in validated raw string
// content. The surrogate-pair handling mirrors the oracle's
// parseUnicodeEscape exactly: a high surrogate pairs with an
// immediately following \uXXXX low surrogate; any unpairable
// surrogate becomes U+FFFD and the follower (if any) is reprocessed
// on its own.
func appendUnescaped(dst, raw []byte) []byte {
	for i := 0; i < len(raw); {
		c := raw[i]
		if c != '\\' {
			dst = append(dst, c)
			i++
			continue
		}
		switch e := raw[i+1]; e {
		case '"', '\\', '/':
			dst = append(dst, e)
			i += 2
		case 'b':
			dst = append(dst, '\b')
			i += 2
		case 'f':
			dst = append(dst, '\f')
			i += 2
		case 'n':
			dst = append(dst, '\n')
			i += 2
		case 'r':
			dst = append(dst, '\r')
			i += 2
		case 't':
			dst = append(dst, '\t')
			i += 2
		default: // 'u': validation admits no other escape byte
			r := hexRune(raw[i+2:])
			i += 6
			if !utf16.IsSurrogate(r) {
				dst = utf8.AppendRune(dst, r)
				continue
			}
			if i+1 < len(raw) && raw[i] == '\\' && raw[i+1] == 'u' {
				if dec := utf16.DecodeRune(r, hexRune(raw[i+2:])); dec != utf8.RuneError {
					dst = utf8.AppendRune(dst, dec)
					i += 6
					continue
				}
			}
			dst = utf8.AppendRune(dst, utf8.RuneError)
		}
	}
	return dst
}

// hexRune decodes four validated hex digits.
func hexRune(b []byte) rune {
	var r rune
	for i := 0; i < 4; i++ {
		c := b[i]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		default:
			r = r<<4 | rune(c-'A'+10)
		}
	}
	return r
}
