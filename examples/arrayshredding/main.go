// Array shredding (the paper's Tiles-* configuration, §3.5/§6.3):
// high-cardinality arrays — here, order line items whose count varies
// wildly — defeat leading-slot extraction. The remedy is to shred the
// array into a separate JSON-tiles relation keyed by the parent id and
// join it back, exactly like the paper's hashtag/mention relations.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	jsontiles "repro"
)

func main() {
	r := rand.New(rand.NewSource(11))
	products := []string{"widget", "gadget", "doohickey", "gizmo", "sprocket"}

	var orders [][]byte
	var items [][]byte // the shredded side relation, one doc per element
	for id := 0; id < 2000; id++ {
		n := 1 + r.Intn(12) // 1..12 line items: high cardinality
		var lines []string
		for j := 0; j < n; j++ {
			p := products[r.Intn(len(products))]
			qty := 1 + r.Intn(9)
			price := float64(5+r.Intn(95)) + 0.99
			lines = append(lines, fmt.Sprintf(`{"product":"%s","qty":%d,"price":%.2f}`, p, qty, price))
			items = append(items, []byte(fmt.Sprintf(
				`{"order_id":%d,"idx":%d,"product":"%s","qty":%d,"price":%.2f}`,
				id, j, p, qty, price)))
		}
		orders = append(orders, []byte(fmt.Sprintf(
			`{"id":%d,"customer":"c%03d","region":"%s","items":[%s]}`,
			id, r.Intn(200), []string{"EU", "US", "APAC"}[r.Intn(3)],
			strings.Join(lines, ","))))
	}

	opts := jsontiles.DefaultOptions()
	opts.TileSize = 512
	orderTbl, err := jsontiles.Load("orders", orders, opts)
	if err != nil {
		log.Fatal(err)
	}
	itemTbl, err := jsontiles.Load("order_items", items, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orders: %d docs; shredded items relation: %d docs\n\n",
		orderTbl.NumRows(), itemTbl.NumRows())

	// Without shredding, only the leading array slots are typed
	// columns; element 9 of a 12-element order lives in binary JSON.
	res, err := orderTbl.Query(
		"data->'items'->0->>'product'",
		"data->'items'->9->>'product'",
	).WhereNotNull(1).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orders with a 10th line item (slot access, JSONB fallback): %d\n\n", res.NumRows())

	// With the side relation, revenue per product over *all* elements
	// is a plain columnar aggregation plus a join back to orders.
	rev, err := itemTbl.Query(
		"data->>'product'",
		"data->>'qty'::BigInt",
		"data->>'price'::Float",
		"data->>'order_id'::BigInt",
	).
		Join(orderTbl, []string{"data->>'id'::BigInt", "data->>'region'"}, 3, 0).
		GroupBy(0, 5).
		Aggregate(jsontiles.CountAll("line_items"), jsontiles.Sum(1, "units")).
		OrderBy(0, false).
		Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("units sold by product and region (shredded join):")
	fmt.Print(rev)
}
