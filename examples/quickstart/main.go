// Quickstart: load a handful of JSON documents, let JSON tiles detect
// and materialize their implicit structure, and run a typed analytical
// query — no schema declared anywhere.
package main

import (
	"fmt"
	"log"

	jsontiles "repro"
)

func main() {
	// The paper's Figure 2: tweets whose schema grew over time
	// (replies appeared in 2007, geo tags in 2010).
	docs := [][]byte{
		[]byte(`{"id":1, "create": "2006-03-01", "text": "a", "user": {"id": 1}}`),
		[]byte(`{"id":2, "create": "2007-03-01", "text": "b", "user": {"id": 3}}`),
		[]byte(`{"id":3, "create": "2007-06-01", "text": "c", "user": {"id": 5}}`),
		[]byte(`{"id":4, "create": "2008-01-01", "text": "a", "user": {"id": 1}, "replies": 9}`),
		[]byte(`{"id":5, "create": "2010-01-01", "text": "b", "user": {"id": 7}, "replies": 3, "geo": {"lat": 1.9}}`),
		[]byte(`{"id":6, "create": "2011-01-01", "text": "c", "user": {"id": 1}, "replies": 2, "geo": null}`),
		[]byte(`{"id":7, "create": "2012-01-01", "text": "d", "user": {"id": 3}, "replies": 0, "geo": {"lat": 2.7}}`),
		[]byte(`{"id":8, "create": "2013-01-01", "text": "x", "user": {"id": 3}, "replies": 1, "geo": {"lat": 3.5}}`),
	}

	opts := jsontiles.DefaultOptions()
	opts.TileSize = 4 // tiny tiles so the demo splits like the paper's figure
	tbl, err := jsontiles.Load("tweets", docs, opts)
	if err != nil {
		log.Fatal(err)
	}

	// What did extraction decide, per tile?
	for i, cols := range tbl.ExtractedPaths() {
		fmt.Printf("tile #%d extracted: %v\n", i+1, cols)
	}

	// Average replies per user, geo-tagged tweets only. The accesses
	// are PostgreSQL-style; the ::BigInt cast is rewritten into a
	// typed column read.
	res, err := tbl.Query(
		"data->'user'->>'id'::BigInt",
		"data->>'replies'::BigInt",
		"data->'geo'->>'lat'::Float",
	).
		WhereNotNull(2).
		GroupBy(0).
		Aggregate(jsontiles.CountAll("tweets"), jsontiles.Avg(1, "avg_replies")).
		OrderBy(0, false).
		Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngeo-tagged tweets per user:")
	fmt.Print(res)

	// The optimizer statistics the table maintains (§4.6).
	st := tbl.Stats()
	fmt.Printf("\nstatistics: %d rows, replies present in %d, ~%.0f distinct users\n",
		st.Rows(), st.PathCount("replies"), st.DistinctCount("user.id"))
}
