// Schema evolution: documents grow fields over time (the paper's §2.2
// Twitter timeline — replies 2007, retweets 2009, geo 2010). A global
// extraction scheme must either miss late fields or store oceans of
// nulls; JSON tiles adapts per tile: early tiles extract the small
// schema, late tiles the grown one, and queries over a late field
// skip the early tiles entirely.
package main

import (
	"fmt"
	"log"

	jsontiles "repro"
)

func main() {
	var docs [][]byte
	mk := func(format string, args ...any) {
		docs = append(docs, []byte(fmt.Sprintf(format, args...)))
	}
	// Era 1 (2006): minimal tweets.
	for i := 0; i < 400; i++ {
		mk(`{"id":%d,"created":"2006-05-%02d","text":"t%d","user":{"id":%d}}`,
			i, 1+i%28, i, i%50)
	}
	// Era 2 (2008): replies appeared.
	for i := 400; i < 800; i++ {
		mk(`{"id":%d,"created":"2008-05-%02d","text":"t%d","user":{"id":%d},"replies":%d}`,
			i, 1+i%28, i, i%50, i%7)
	}
	// Era 3 (2010+): retweets and geo tags.
	for i := 800; i < 1200; i++ {
		mk(`{"id":%d,"created":"2010-05-%02d","text":"t%d","user":{"id":%d},"replies":%d,"retweets":%d,"geo":{"lat":%d.5,"lon":%d.25}}`,
			i, 1+i%28, i, i%50, i%7, i%100, i%90, i%180)
	}

	opts := jsontiles.DefaultOptions()
	opts.TileSize = 400 // one tile per era for a crisp picture
	opts.PartitionSize = 1
	tbl, err := jsontiles.Load("tweets", docs, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-tile extracted schema (note the growth):")
	for i, cols := range tbl.ExtractedPaths() {
		fmt.Printf("  tile #%d (%d columns): %v\n", i+1, len(cols), cols)
	}

	// A query over a late-era field: tiles 1 and 2 provably lack
	// "retweets" (their header bloom filters say so), so the scan
	// skips them without touching a single tuple.
	res, err := tbl.Query(
		"data->>'retweets'::BigInt",
		"data->'user'->>'id'::BigInt",
	).
		WhereCmp(0, jsontiles.Ge, 90).
		GroupBy(1).
		Aggregate(jsontiles.CountAll("viral_tweets"), jsontiles.Max(0, "max_retweets")).
		OrderBy(1, true).
		Limit(5).
		Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nusers with the most-retweeted tweets (early tiles skipped):")
	fmt.Print(res)

	// Dates were strings in the input; extraction detected and stored
	// them as timestamps (§4.9), so date casts are free.
	res, err = tbl.Query("data->>'created'::Date", "data->>'replies'::BigInt").
		WhereNotNull(1).
		GroupBy(0).
		Aggregate(jsontiles.Sum(1, "replies")).
		OrderBy(1, true).
		Limit(3).
		Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbusiest days by replies:")
	fmt.Print(res)
}
