// Remote scan: storage/compute separation over a simulated object
// store. A multi-segment table is written through a BlockStore, then
// scanned through a latency-injecting fake S3 — first with read
// coalescing disabled (every block is its own round trip), then with
// the default coalescing and readahead, printing the request counts
// the store actually served. EXPLAIN ANALYZE shows the same numbers
// per scan: `store reads=… bytes=… coalesced=… prefetch_hits=…`.
package main

import (
	"fmt"
	"log"
	"time"

	jsontiles "repro"
)

// requestCounting is the corner of the fake-S3 store this demo reads
// back; jsontiles.NewFakeS3Store's concrete type implements it.
type requestCounting interface {
	Requests() int64
	RangeReadCount() int64
	BytesRead() int64
}

func load(opts jsontiles.Options) *jsontiles.Table {
	tbl, err := jsontiles.OpenDir("tweets", "", opts)
	if err != nil {
		log.Fatal(err)
	}
	for batch := 0; batch < 4; batch++ {
		for i := 0; i < 500; i++ {
			id := batch*500 + i
			// Schema evolution, as in the paper's tweets: geo tags only
			// exist in the later half of the data, so the seen-path tile
			// index can prove the early segments irrelevant (§4.8).
			doc := fmt.Sprintf(`{"id":%d,"text":"tweet-%d","user":{"id":%d},"replies":%d}`,
				id, id, id%97, id%13)
			if batch >= 2 {
				doc = fmt.Sprintf(`{"id":%d,"text":"tweet-%d","user":{"id":%d},"replies":%d,"geo":{"lat":%g}}`,
					id, id, id%97, id%13, float64(id)/100)
			}
			if err := tbl.Insert([]byte(doc)); err != nil {
				log.Fatal(err)
			}
		}
		if err := tbl.Flush(); err != nil { // one segment object per batch
			log.Fatal(err)
		}
	}
	return tbl
}

func scan(opts jsontiles.Options, label string, counters requestCounting) {
	tbl, err := jsontiles.OpenDir("tweets", "", opts)
	if err != nil {
		log.Fatal(err)
	}
	defer tbl.Close()

	before := counters.RangeReadCount()
	start := time.Now()
	res, qs, err := tbl.Query(
		"data->>'id'::BigInt",
		"data->>'replies'::BigInt",
		"data->'user'->>'id'::BigInt",
		"data->'geo'->>'lat'::Float",
	).
		WhereNotNull(3). // tile index skips the geo-less segments
		GroupBy().
		Aggregate(jsontiles.CountAll("n"), jsontiles.Sum(1, "replies")).
		RunAnalyzed()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n  rows=%d replies=%d wall=%s range_reads=%d\n",
		label, res.Value(0, 0).Int64(), res.Value(0, 1).Int64(),
		time.Since(start).Round(time.Millisecond), counters.RangeReadCount()-before)
	fmt.Printf("  plan:\n%s\n", qs.Plan)
	if err := tbl.ScanErr(); err != nil {
		log.Fatalf("scan degraded: %v", err)
	}
}

func main() {
	// The table's bytes live in the inner store; the fake adds a
	// 2ms-per-request round trip on top, so every saved request is
	// visible in wall time.
	inner := jsontiles.NewMemStore()
	fake := jsontiles.NewFakeS3Store(inner, jsontiles.FakeS3Options{
		Latency: 2 * time.Millisecond,
	})

	opts := jsontiles.DefaultOptions()
	opts.Store = fake
	load(opts).Close()

	// One round trip per block: coalescing disabled.
	naive := opts
	naive.StoreReadGap = -1
	scan(naive, "coalescing disabled", fake.(requestCounting))

	// Adjacent block reads merge into ranged requests, and the scan
	// readahead warms the next tile while the current one is scanned.
	scan(opts, "coalescing + readahead", fake.(requestCounting))
}
