// Log analytics: the paper's motivating Splunk scenario — machine
// logs from several services, each with its own JSON structure, land
// in one collection. Defining a global schema up front is infeasible;
// JSON tiles reorders and clusters the interleaved types into
// homogeneous tiles and extracts each service's schema locally, so
// typed analytics run at columnar speed.
package main

import (
	"fmt"
	"log"
	"math/rand"

	jsontiles "repro"
)

func main() {
	r := rand.New(rand.NewSource(7))
	var docs [][]byte
	// Three log producers, interleaved as they would arrive at a
	// central collector.
	for i := 0; i < 3000; i++ {
		switch i % 3 {
		case 0: // HTTP access logs
			docs = append(docs, []byte(fmt.Sprintf(
				`{"ts":"2020-06-01 %02d:%02d:%02d","service":"gateway","method":"%s","path":"/api/v1/items/%d","status":%d,"latency_ms":%.1f}`,
				r.Intn(24), r.Intn(60), r.Intn(60),
				[]string{"GET", "GET", "GET", "POST", "PUT"}[r.Intn(5)],
				r.Intn(500), []int{200, 200, 200, 200, 404, 500}[r.Intn(6)],
				r.Float64()*120)))
		case 1: // application errors
			docs = append(docs, []byte(fmt.Sprintf(
				`{"ts":"2020-06-01 %02d:%02d:%02d","service":"worker","level":"%s","msg":"job processing","job":{"id":%d,"queue":"%s"},"retries":%d}`,
				r.Intn(24), r.Intn(60), r.Intn(60),
				[]string{"info", "info", "warn", "error"}[r.Intn(4)],
				r.Intn(10000), []string{"mail", "billing", "index"}[r.Intn(3)],
				r.Intn(4))))
		default: // metrics samples
			docs = append(docs, []byte(fmt.Sprintf(
				`{"ts":"2020-06-01 %02d:%02d:%02d","service":"db","metric":"query_time","value":%.3f,"tags":["shard%d","primary"]}`,
				r.Intn(24), r.Intn(60), r.Intn(60), r.Float64()*50, r.Intn(4))))
		}
	}

	opts := jsontiles.DefaultOptions()
	opts.TileSize = 256
	tbl, err := jsontiles.Load("logs", docs, opts)
	if err != nil {
		log.Fatal(err)
	}

	info := tbl.StorageInfo()
	fmt.Printf("loaded %d log lines into %d tiles, %d columns extracted\n",
		tbl.NumRows(), info.NumTiles, info.ExtractedColumns)
	fmt.Printf("(reordering clustered the three producers; without it no "+
		"structure reaches the %.0f%% threshold in any tile)\n\n", 60.0)

	// Error rate per HTTP status — only gateway documents carry
	// "status", so tiles holding only worker/db docs are skipped.
	// EXPLAIN ANALYZE shows the skipping at work.
	res, stats, err := tbl.Query(
		"data->>'status'::BigInt",
		"data->>'latency_ms'::Float",
	).
		WhereNotNull(0).
		GroupBy(0).
		Aggregate(jsontiles.CountAll("requests"), jsontiles.Avg(1, "avg_latency_ms")).
		OrderBy(0, false).
		RunAnalyzed()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gateway requests by status:")
	fmt.Print(res)
	fmt.Println("\nanalyzed plan:")
	fmt.Print(stats)
	if scan := stats.Plan.Find("Scan"); scan != nil && scan.Scan != nil {
		fmt.Printf("tile skipping (§4.8): %d of %d tiles skipped (%.0f%% — "+
			"tiles holding only worker/db logs never carry 'status')\n",
			scan.Scan.TilesSkipped, scan.Scan.NumTiles, 100*scan.Scan.SkipRatio())
	}

	// Failed jobs by queue — a different producer's schema, same table.
	res, err = tbl.Query(
		"data->'job'->>'queue'",
		"data->>'level'",
		"data->>'retries'::BigInt",
	).
		WhereCmp(1, jsontiles.Eq, "error").
		GroupBy(0).
		Aggregate(jsontiles.CountAll("errors"), jsontiles.Max(2, "max_retries")).
		OrderBy(1, true).
		Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nworker errors by queue:")
	fmt.Print(res)

	// Slowest db shards.
	res, err = tbl.Query(
		"data->'tags'->0->>'text'", // absent: tags are plain strings -> NULL
		"data->'tags'->0",          // JSON access of the first tag
		"data->>'value'::Float",
	).
		WhereNotNull(2).
		GroupBy(1).
		Aggregate(jsontiles.CountAll("samples"), jsontiles.Avg(2, "avg_query_ms")).
		OrderBy(2, true).
		Limit(4).
		Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndb query time by shard:")
	fmt.Print(res)
}
