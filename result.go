package jsontiles

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dates"
	"repro/internal/engine"
	"repro/internal/expr"
)

// Result is a materialized query result.
type Result struct {
	cols []engine.ColumnDesc
	rows [][]expr.Value
}

func newResult(r *engine.Result) *Result {
	return &Result{cols: r.Cols, rows: r.Rows}
}

// Columns returns the output column names.
func (r *Result) Columns() []string {
	out := make([]string, len(r.cols))
	for i, c := range r.cols {
		out[i] = c.Name
	}
	return out
}

// NumRows returns the row count.
func (r *Result) NumRows() int { return len(r.rows) }

// Row returns the values of row i.
func (r *Result) Row(i int) []Value {
	out := make([]Value, len(r.rows[i]))
	for j, v := range r.rows[i] {
		out[j] = Value{v: v}
	}
	return out
}

// Value returns the single cell (i, j).
func (r *Result) Value(i, j int) Value { return Value{v: r.rows[i][j]} }

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var sb strings.Builder
	widths := make([]int, len(r.cols))
	cells := make([][]string, len(r.rows)+1)
	cells[0] = r.Columns()
	for i, c := range cells[0] {
		widths[i] = len(c)
	}
	for i, row := range r.rows {
		line := make([]string, len(row))
		for j, v := range row {
			line[j] = v.String()
			if len(line[j]) > widths[j] {
				widths[j] = len(line[j])
			}
		}
		cells[i+1] = line
	}
	for _, line := range cells {
		for j, c := range line {
			if j > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[j], c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Value is one SQL value of a query result.
type Value struct {
	v expr.Value
}

// IsNull reports SQL NULL.
func (v Value) IsNull() bool { return v.v.Null }

// Int64 returns the integer payload (0 for non-integers).
func (v Value) Int64() int64 {
	if v.v.Null {
		return 0
	}
	switch v.v.Typ {
	case expr.TBigInt, expr.TTimestamp:
		return v.v.I
	case expr.TFloat:
		return int64(v.v.F)
	}
	return 0
}

// Float64 returns the numeric payload widened to float64.
func (v Value) Float64() float64 {
	f, _ := v.v.AsFloat()
	return f
}

// Text returns the value rendered as text (strings verbatim).
func (v Value) Text() string {
	if v.v.Null {
		return ""
	}
	return v.v.String()
}

// Bool returns the boolean payload.
func (v Value) Bool() bool { return !v.v.Null && v.v.B }

// Time returns the timestamp payload.
func (v Value) Time() time.Time {
	return dates.ToTime(v.v.I)
}

// String implements fmt.Stringer ("NULL" for nulls).
func (v Value) String() string { return v.v.String() }

// Any returns the value as a plain Go type suitable for
// encoding/json: nil for NULL, int64, float64, string, bool, an
// RFC 3339 string for timestamps, and the rendered text for JSON
// documents. The query service streams results through this.
func (v Value) Any() any {
	if v.v.Null {
		return nil
	}
	switch v.v.Typ {
	case expr.TBigInt:
		return v.v.I
	case expr.TFloat:
		return v.v.F
	case expr.TText:
		return v.v.S
	case expr.TBool:
		return v.v.B
	case expr.TTimestamp:
		return dates.ToTime(v.v.I).UTC().Format(time.RFC3339Nano)
	case expr.TJSON:
		return v.v.String()
	}
	return v.v.String()
}
