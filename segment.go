package jsontiles

// Segment persistence: a Table can be written to a single segment
// file and reopened — in another process, later — as a disk-backed
// table whose queries read only the blocks they touch, through a
// capacity-bounded buffer pool. See DESIGN.md §6 for the file layout
// and the paper-section mapping.

import (
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/storage"
	"repro/internal/tile"
)

// WriteSegment persists the table to a segment file at path: every
// tile's extracted columns and binary-JSON fallback as compressed,
// checksummed blocks, plus a footer carrying the tile headers (seen-
// path bloom filters, zone maps) and the relation statistics. Pending
// inserts are flushed first. The write is atomic: the file appears
// under its final name only when complete.
func (t *Table) WriteSegment(path string) error {
	if err := t.Flush(); err != nil {
		return err
	}
	if t.rel == nil {
		return fmt.Errorf("jsontiles: table %q has no data to persist", t.name)
	}
	return storage.WriteSegmentFile(path, t.rel)
}

// OpenSegment opens a segment file as a disk-backed table. Opening
// reads only the header, the fixed tail, and the footer; queries then
// materialize just the tiles that survive skipping and the columns
// they access, block by block, through a buffer pool bounded by
// opts.CacheBytes. Query semantics are identical to the in-memory
// table the segment was written from.
//
// The returned table holds an open file handle; call Close when done.
//
// With opts.Store set, path names an object within that store instead
// of a filesystem path; the caller keeps ownership of the store.
func OpenSegment(name, path string, opts Options) (*Table, error) {
	opts = opts.withDefaults()
	maybeServeDebug(opts.DebugAddr)
	pool := bufpool.New(opts.CacheBytes)
	var (
		rel storage.Relation
		err error
	)
	if opts.Store != nil {
		rel, err = storage.OpenSegmentStore(name, opts.Store, path, pool, opts.loaderConfig())
	} else {
		rel, err = storage.OpenSegmentFile(name, path, pool, opts.loaderConfig())
	}
	if err != nil {
		return nil, err
	}
	return &Table{name: name, opts: opts, rel: rel, metrics: &tile.Metrics{}}, nil
}

// Close releases resources held by a disk-backed table (the segment
// file handle and its cached blocks). In-memory tables have nothing
// to release; Close is a no-op for them.
func (t *Table) Close() error {
	if c, ok := t.rel.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// ScanErr returns the first block-level error any query on a
// disk-backed table encountered. Scans degrade unreadable blocks to
// NULL values rather than failing mid-query; callers that must
// distinguish "NULL because absent" from "NULL because unreadable"
// check ScanErr after querying. Always nil for in-memory tables.
func (t *Table) ScanErr() error {
	if e, ok := t.rel.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}
