package jsontiles

import (
	"fmt"
	"testing"
)

// TestRecomputeAfterDrift exercises the full §4.7 lifecycle: build,
// update most rows of a tile to a new structure, observe the advice,
// recompute, and verify the new structure became columnar.
func TestRecomputeAfterDrift(t *testing.T) {
	o := DefaultOptions()
	o.TileSize = 32
	o.PartitionSize = 1
	o.Workers = 2
	var data [][]byte
	for i := 0; i < 64; i++ {
		data = append(data, []byte(fmt.Sprintf(`{"old_key":%d}`, i)))
	}
	tbl, err := Load("drift", data, o)
	if err != nil {
		t.Fatal(err)
	}
	if n := tbl.Recompute(); n != 0 {
		t.Fatalf("fresh table recomputed %d tiles", n)
	}

	// Rewrite 20 of the first tile's 32 rows to a disjoint structure.
	advised := false
	for i := 0; i < 20; i++ {
		adv, err := tbl.Update(i, []byte(fmt.Sprintf(`{"new_key":"v%d"}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		advised = advised || adv
	}
	if !advised {
		t.Fatal("recompute never advised despite majority drift")
	}

	// Before recomputation the new structure is served via the binary
	// JSON fallback; results must already be correct.
	res, err := tbl.Query("data->>'new_key'").WhereNotNull(0).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 20 {
		t.Fatalf("pre-recompute rows = %d", res.NumRows())
	}

	if n := tbl.Recompute(); n != 1 {
		t.Fatalf("recomputed %d tiles, want 1", n)
	}
	// After recomputation the drifted tile extracts new_key as a column.
	foundNew := false
	for _, cols := range tbl.ExtractedPaths() {
		for _, c := range cols {
			if c == "new_key Text" {
				foundNew = true
			}
		}
	}
	if !foundNew {
		t.Errorf("new_key not extracted after recompute: %v", tbl.ExtractedPaths())
	}
	// Results unchanged.
	res, err = tbl.Query("data->>'new_key'").WhereNotNull(0).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 20 {
		t.Errorf("post-recompute rows = %d", res.NumRows())
	}
	// Old rows still intact.
	res, err = tbl.Query("data->>'old_key'::BigInt").WhereNotNull(0).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 44 {
		t.Errorf("old rows = %d, want 44", res.NumRows())
	}
	// Statistics rebuilt to reflect the new world.
	if got := tbl.Stats().PathCount("new_key"); got != 20 {
		t.Errorf("stats PathCount(new_key) = %d", got)
	}
}
