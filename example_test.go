package jsontiles_test

// Runnable godoc examples; `go test` executes them and checks the
// Output comments, so the README's quickstart snippets can never rot.

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	jsontiles "repro"
)

// Example_quickstart loads newline-delimited JSON documents into an
// in-memory table and runs an aggregate query over a nested field.
func Example_quickstart() {
	docs := [][]byte{
		[]byte(`{"user":{"city":"paris"},"stars":5}`),
		[]byte(`{"user":{"city":"tokyo"},"stars":4}`),
		[]byte(`{"user":{"city":"paris"},"stars":3}`),
		[]byte(`{"user":{"city":"osaka"},"stars":5}`),
	}
	tbl, err := jsontiles.Load("reviews", docs, jsontiles.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := tbl.Query("data->'user'->>'city'", "data->>'stars'::BigInt").
		GroupBy(0).
		Aggregate(jsontiles.CountAll("n"), jsontiles.Sum(1, "s")).
		OrderBy(0, false).
		Run()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < res.NumRows(); i++ {
		fmt.Printf("%s n=%d stars=%d\n",
			res.Value(i, 0).Text(), res.Value(i, 1).Int64(), res.Value(i, 2).Int64())
	}
	// Output:
	// osaka n=1 stars=5
	// paris n=2 stars=8
	// tokyo n=1 stars=4
}

// ExampleTable_Insert streams documents into a table one at a time;
// tiles are built incrementally as the insert buffer fills.
func ExampleTable_Insert() {
	tbl, err := jsontiles.Load("events", nil, jsontiles.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		doc := fmt.Sprintf(`{"id":%d,"kind":"click"}`, i)
		if err := tbl.Insert([]byte(doc)); err != nil {
			log.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		log.Fatal(err)
	}
	res, err := tbl.Query("data->>'id'::BigInt").
		WhereCmp(0, jsontiles.Ge, 7).
		GroupBy().
		Aggregate(jsontiles.CountAll("n")).
		Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rows=%d matching=%d\n", tbl.NumRows(), res.Value(0, 0).Int64())
	// Output:
	// rows=10 matching=3
}

// ExampleTable_WriteSegment persists a table to a single segment file
// and reopens it as a disk-backed table whose queries read only the
// blocks they touch.
func ExampleTable_WriteSegment() {
	dir, err := os.MkdirTemp("", "jsontiles-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	docs := [][]byte{
		[]byte(`{"sku":"a-1","qty":3}`),
		[]byte(`{"sku":"b-2","qty":5}`),
		[]byte(`{"sku":"c-3","qty":2}`),
	}
	tbl, err := jsontiles.Load("inventory", docs, jsontiles.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, "inventory.seg")
	if err := tbl.WriteSegment(path); err != nil {
		log.Fatal(err)
	}

	seg, err := jsontiles.OpenSegment("inventory", path, jsontiles.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer seg.Close()
	res, err := seg.Query("data->>'sku'", "data->>'qty'::BigInt").
		OrderBy(1, true).
		Run()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < res.NumRows(); i++ {
		fmt.Printf("%s qty=%d\n", res.Value(i, 0).Text(), res.Value(i, 1).Int64())
	}
	// Output:
	// b-2 qty=5
	// a-1 qty=3
	// c-3 qty=2
}

// ExampleOpenDir_blockStore runs the same multi-segment table over a
// BlockStore instead of a directory path — storage/compute separation.
// The store here is in-memory; swapping in NewFSStore or a fake (or
// real) object store changes nothing else. Closing and reopening the
// table demonstrates read-after-commit visibility: the store, not the
// Table, owns the bytes.
func ExampleOpenDir_blockStore() {
	store := jsontiles.NewMemStore()

	opts := jsontiles.DefaultOptions()
	opts.Store = store
	tbl, err := jsontiles.OpenDir("orders", "", opts)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		doc := fmt.Sprintf(`{"id":%d,"total":%d}`, i, i*10)
		if err := tbl.Insert([]byte(doc)); err != nil {
			log.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen from the same store: the committed generation is all that
	// is needed — no local files anywhere.
	tbl, err = jsontiles.OpenDir("orders", "", opts)
	if err != nil {
		log.Fatal(err)
	}
	defer tbl.Close()
	res, err := tbl.Query("data->>'total'::BigInt").
		GroupBy().
		Aggregate(jsontiles.CountAll("n"), jsontiles.Sum(0, "sum")).
		Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orders=%d total=%d\n", res.Value(0, 0).Int64(), res.Value(0, 1).Int64())
	// Output:
	// orders=6 total=150
}

// ExampleOpenDir opens a table directory that grows one segment per
// flush and is compacted in the background; the manifest makes every
// generation crash-safe.
func ExampleOpenDir() {
	dir, err := os.MkdirTemp("", "jsontiles-dir-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := jsontiles.DefaultOptions()
	opts.CompactFanIn = -1 // compact explicitly below
	tbl, err := jsontiles.OpenDir("metrics", filepath.Join(dir, "metrics"), opts)
	if err != nil {
		log.Fatal(err)
	}
	defer tbl.Close()

	for batch := 0; batch < 4; batch++ {
		for i := 0; i < 100; i++ {
			doc := fmt.Sprintf(`{"batch":%d,"v":%d}`, batch, i)
			if err := tbl.Insert([]byte(doc)); err != nil {
				log.Fatal(err)
			}
		}
		if err := tbl.Flush(); err != nil { // one new segment, O(batch) cost
			log.Fatal(err)
		}
	}
	fmt.Printf("segments before compaction: %d\n", tbl.NumSegments())
	if _, err := tbl.Compact(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segments after compaction: %d\n", tbl.NumSegments())
	fmt.Printf("rows: %d\n", tbl.NumRows())
	// Output:
	// segments before compaction: 4
	// segments after compaction: 1
	// rows: 400
}
