// Package jsontiles is the public API of this JSON Tiles
// implementation (Durner, Leis, Neumann: "JSON Tiles: Fast Analytics
// on Semi-Structured Data", SIGMOD 2021). It stores collections of
// JSON documents as *tiles* — columnar chunks whose locally-frequent
// key paths are automatically detected (frequent itemset mining),
// materialized as typed columns, and backed by an optimized binary
// JSON representation for everything infrequent — and runs analytical
// queries over them at near-columnar speed while keeping full JSON
// flexibility.
//
// Quick start:
//
//	tbl, err := jsontiles.Load("events", docs, jsontiles.DefaultOptions())
//	res, err := tbl.Query(
//	        "data->>'status'",
//	        "data->>'latency_ms'::Float",
//	    ).
//	    WhereNotNull(0).
//	    GroupBy(0).
//	    Aggregate(jsontiles.CountAll("n"), jsontiles.Avg(1, "avg_latency")).
//	    OrderBy(1, true).
//	    Run()
//
// Access expressions use PostgreSQL syntax: -> steps into objects and
// arrays, ->> extracts text, and a trailing ::Type cast is rewritten
// into a typed column access (paper §4.3).
package jsontiles

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/storage"
	"repro/internal/tile"
)

// Options configures table construction. The zero value is not valid;
// start from DefaultOptions.
type Options struct {
	// TileSize is the number of documents per tile (paper default 2¹⁰).
	TileSize int
	// PartitionSize is the number of neighboring tiles grouped for
	// tuple reordering (paper default 8).
	PartitionSize int
	// ExtractionThreshold is the fraction of a tile's documents that
	// must share a structure for it to be materialized (default 0.6).
	ExtractionThreshold float64
	// Reorder enables clustering tuples with equal frequent structure
	// into the same tiles (§3.2).
	Reorder bool
	// SkipTiles enables skipping tiles that provably contain no match
	// (§4.8).
	SkipTiles bool
	// DetectDates extracts date-like string columns as timestamps
	// (§4.9).
	DetectDates bool
	// Workers bounds loading and query parallelism (0 = all CPUs).
	Workers int
	// MorselRows is the target number of rows per scan morsel — the
	// unit of work parallel scans pull from the shared queue (0 = the
	// 32K default). Smaller morsels balance skew better; larger ones
	// amortize per-morsel setup. Small tables shrink it automatically.
	MorselRows int
	// CacheBytes bounds the buffer pool of tables opened from segment
	// files (OpenSegment) or table directories (OpenDir): decompressed
	// block bytes kept resident across queries. 0 means the 64 MiB
	// default; in-memory tables ignore it.
	CacheBytes int64
	// CompactFanIn is how many same-size-tier segments a directory-
	// backed table (OpenDir) merges per compaction round. 0 selects
	// the default (4); a negative value disables background
	// compaction — segments then accumulate one per flush until
	// Compact is called explicitly.
	CompactFanIn int
	// OnQueryDone, when set, receives a QueryStats after every
	// Run/RunAnalyzed on this table's queries (slow-query logging,
	// metrics export). Called synchronously before Run returns. On a
	// multi-table query the hook of the first table (in add order)
	// that sets one fires, once per query.
	OnQueryDone func(QueryStats)
	// SlowQueryThreshold, when positive, instruments every query on
	// this table like RunAnalyzed and writes one JSON line to
	// SlowQueryLog for each query whose wall time reaches the
	// threshold. On a multi-table query the first table (in add
	// order) with a positive threshold provides both settings.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query lines (default os.Stderr).
	// Writes are serialized process-wide, so one line never
	// interleaves with another even across tables.
	SlowQueryLog io.Writer
	// DebugAddr, when non-empty, starts the process-wide debug HTTP
	// server on that address (once; later tables reuse it) serving
	// /metrics, /debug/queries, /debug/trace, and net/http/pprof.
	// Equivalent to calling ServeDebug directly.
	DebugAddr string
	// Store, when non-nil, backs OpenDir and OpenSegment with this
	// block store instead of the local filesystem: OpenDir treats it
	// as the table's object namespace (the dir argument is ignored),
	// OpenSegment treats its path argument as an object name within
	// it. The caller keeps ownership — Close leaves the store open.
	// See DESIGN.md §6.9 for the storage contract.
	Store BlockStore
	// StoreReadGap tunes block-read coalescing on store-backed scans:
	// adjacent surviving blocks whose dead gap is at most this many
	// bytes merge into one ranged read. 0 selects the 32 KiB default;
	// a negative value disables coalescing (one request per block).
	StoreReadGap int64
}

// withDefaults substitutes DefaultOptions for the tile-layout fields
// when the caller left TileSize zero, while preserving the runtime
// fields (workers, cache, compaction, hooks, slow-query logging,
// DebugAddr) the caller may have set without picking a layout.
func (o Options) withDefaults() Options {
	if o.TileSize != 0 {
		return o
	}
	def := DefaultOptions()
	def.Workers = o.Workers
	def.MorselRows = o.MorselRows
	def.CacheBytes = o.CacheBytes
	def.CompactFanIn = o.CompactFanIn
	def.OnQueryDone = o.OnQueryDone
	def.SlowQueryThreshold = o.SlowQueryThreshold
	def.SlowQueryLog = o.SlowQueryLog
	def.DebugAddr = o.DebugAddr
	def.Store = o.Store
	def.StoreReadGap = o.StoreReadGap
	return def
}

// DefaultOptions returns the paper's recommended settings.
func DefaultOptions() Options {
	return Options{
		TileSize:            1 << 10,
		PartitionSize:       8,
		ExtractionThreshold: 0.6,
		Reorder:             true,
		SkipTiles:           true,
		DetectDates:         true,
	}
}

func (o Options) loaderConfig() storage.LoaderConfig {
	cfg := storage.DefaultLoaderConfig()
	if o.TileSize > 0 {
		cfg.Tile.TileSize = o.TileSize
	}
	if o.PartitionSize > 0 {
		cfg.Tile.PartitionSize = o.PartitionSize
	}
	if o.ExtractionThreshold > 0 {
		cfg.Tile.Threshold = o.ExtractionThreshold
	}
	cfg.Tile.DetectDates = o.DetectDates
	cfg.Reorder = o.Reorder
	cfg.SkipTiles = o.SkipTiles
	cfg.MorselRows = o.MorselRows
	cfg.StoreGapBytes = o.StoreReadGap
	return cfg
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Table is a JSON collection stored as JSON tiles.
type Table struct {
	name    string
	opts    Options
	rel     storage.Relation
	pending [][]byte
	metrics *tile.Metrics
}

// Load parses and ingests a batch of JSON documents (one document per
// element) into a new table.
func Load(name string, docs [][]byte, opts Options) (*Table, error) {
	opts = opts.withDefaults()
	maybeServeDebug(opts.DebugAddr)
	m := &tile.Metrics{}
	loader := storage.NewTilesLoader(opts.loaderConfig(), m)
	rel, err := loader.Load(name, docs, opts.workers())
	if err != nil {
		return nil, err
	}
	return &Table{name: name, opts: opts, rel: rel, metrics: m}, nil
}

// LoadReader ingests newline-delimited JSON from r.
func LoadReader(name string, r io.Reader, opts Options) (*Table, error) {
	var docs [][]byte
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		line := trimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		docs = append(docs, append([]byte(nil), line...))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return Load(name, docs, opts)
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && isASCIISpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isASCIISpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func isASCIISpace(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '\v', '\f':
		return true
	}
	return false
}

// New returns an empty table for incremental insertion. Documents are
// buffered and materialized into tiles partition by partition; call
// Flush to force pending documents into tiles.
func New(name string, opts Options) *Table {
	opts = opts.withDefaults()
	maybeServeDebug(opts.DebugAddr)
	m := &tile.Metrics{}
	return &Table{name: name, opts: opts, rel: storage.BuildTiles(name, nil, opts.loaderConfig(), 1, m), metrics: m}
}

// Insert buffers one JSON document. A new tile partition is
// materialized whenever TileSize × PartitionSize documents accumulate
// (§3.2: "A new tile is created whenever the number of newly-inserted
// tuples reaches the tile size"). The document is validated now but
// parsed into columns only at materialization time, by the structural
// tape path (DESIGN.md §6.8).
func (t *Table) Insert(doc []byte) error {
	if err := storage.ValidateDoc(doc); err != nil {
		return err
	}
	t.pending = append(t.pending, append([]byte(nil), doc...))
	if len(t.pending) >= t.opts.TileSize*t.opts.PartitionSize {
		return t.Flush()
	}
	return nil
}

// Flush materializes pending documents into tiles. On an in-memory
// table the new tiles are concatenated onto the relation; on a
// directory-backed table (OpenDir) they are persisted as one new
// segment and committed to the manifest — work proportional to the
// pending documents, independent of table size.
func (t *Table) Flush() error {
	if len(t.pending) == 0 {
		return nil
	}
	lines := t.pending
	t.pending = nil
	newRel, err := storage.BuildTilesFromLines(t.name, lines, t.opts.loaderConfig(), t.opts.workers(), t.metrics)
	if err != nil {
		return err
	}
	if dt, ok := t.rel.(*storage.DirTable); ok {
		ti := newRel.(storage.TileIntrospector)
		return dt.AppendTiles(ti.Tiles(), newRel.Stats())
	}
	if t.rel == nil || t.rel.NumRows() == 0 {
		t.rel = newRel
		return nil
	}
	t.rel = storage.Concat(t.name, t.rel, newRel)
	return nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// NumRows returns the number of materialized documents (excluding
// pending inserts; call Flush first to count everything).
func (t *Table) NumRows() int {
	if t.rel == nil {
		return 0
	}
	return t.rel.NumRows()
}

// Update replaces the document at row index i in place (§4.7): shared
// extracted keys are updated in the columns, removed keys become
// nulls, and new key paths register in the tile header. It reports
// whether the containing tile accumulated so many structural outliers
// that re-materialization is advisable.
func (t *Table) Update(i int, doc []byte) (recomputeAdvised bool, err error) {
	v, err := jsontext.Parse(doc)
	if err != nil {
		return false, err
	}
	up, ok := t.rel.(interface {
		UpdateRow(int, jsonvalue.Value) (bool, error)
	})
	if !ok {
		return false, fmt.Errorf("jsontiles: table does not support updates")
	}
	return up.UpdateRow(i, v)
}

// Recompute re-materializes tiles whose documents drifted away from
// their extracted schema through updates (§4.7) and returns how many
// tiles were rebuilt. Cheap when nothing drifted.
func (t *Table) Recompute() int {
	rc, ok := t.rel.(interface{ RecomputeTiles() int })
	if !ok {
		return 0
	}
	return rc.RecomputeTiles()
}

// LoadStats breaks down where ingest time went, per loading phase
// (paper Figure 16), accumulated over every Load/Insert/Flush into
// this table.
type LoadStats struct {
	// Parse is JSON text parsing; Mine is frequent-structure mining
	// (§3.1); Extract is column materialization; WriteJSONB is binary
	// JSON encoding (§4.5); Reorder is tuple clustering (§3.2).
	Parse, Mine, Extract, WriteJSONB, Reorder time.Duration
	// TilesBuilt is the number of tiles materialized.
	TilesBuilt int64
	// DocsTape counts documents ingested on the structural-tape path;
	// DocsTree counts documents that fell back to the boxed
	// jsonvalue-tree path (DESIGN.md §6.8).
	DocsTape, DocsTree int64
	// SubtreesSkipped counts array subtrees skipped (not walked) during
	// extraction because they lay beyond the MaxArraySlots cap.
	SubtreesSkipped int64
}

// String renders the breakdown on one line.
func (s LoadStats) String() string {
	return fmt.Sprintf("parse %s  mine %s  extract %s  jsonb %s  reorder %s  (%d tiles, %d tape / %d tree docs)",
		s.Parse.Round(time.Microsecond), s.Mine.Round(time.Microsecond),
		s.Extract.Round(time.Microsecond), s.WriteJSONB.Round(time.Microsecond),
		s.Reorder.Round(time.Microsecond), s.TilesBuilt, s.DocsTape, s.DocsTree)
}

// LoadStats reports the table's cumulative load-time breakdown.
func (t *Table) LoadStats() LoadStats {
	snap := t.metrics.Snapshot()
	return LoadStats{
		Parse:           time.Duration(snap.ParseNanos),
		Mine:            time.Duration(snap.MineNanos),
		Extract:         time.Duration(snap.ExtractNanos),
		WriteJSONB:      time.Duration(snap.WriteJSONBNanos),
		Reorder:         time.Duration(snap.ReorderNanos),
		TilesBuilt:      snap.TilesBuilt,
		DocsTape:        snap.DocsTape,
		DocsTree:        snap.DocsTree,
		SubtreesSkipped: snap.SubtreesSkipped,
	}
}

// materialize is a helper shared with Query.Run.
func materialize(op engine.Operator, workers int) *engine.Result {
	return engine.Materialize(op, workers)
}
