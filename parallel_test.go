package jsontiles

// End-to-end tests for morsel-driven parallel execution: worker
// resolution across joined tables, EXPLAIN ANALYZE morsel/partition
// tokens, cross-worker result conformance through the public API, and
// concurrent queries racing a compacting directory table (run under
// -race in CI).

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestEffectiveWorkersTakesMaxAcrossTables is the regression test for
// worker resolution: the query must take the maximum Workers across
// every referenced table, not whatever the first table happened to be
// configured with.
func TestEffectiveWorkersTakesMaxAcrossTables(t *testing.T) {
	lo := opts()
	lo.Workers = 1
	hi := opts()
	hi.Workers = 6

	left, err := Load("left", reviewDocs(100), lo)
	if err != nil {
		t.Fatal(err)
	}
	var bdocs [][]byte
	for i := 0; i < 10; i++ {
		bdocs = append(bdocs, []byte(fmt.Sprintf(`{"id":"b%02d","city":"c%d"}`, i, i%3)))
	}
	right, err := Load("right", bdocs, hi)
	if err != nil {
		t.Fatal(err)
	}

	// Workers=1 table first: the join partner's higher setting must
	// still win.
	q := left.Query("data->>'business'", "data->>'stars'::BigInt").
		Join(right, []string{"data->>'id'", "data->>'city'"}, 0, 0)
	if got := q.effectiveWorkers(); got != 6 {
		t.Fatalf("effectiveWorkers = %d, want 6 (max across tables)", got)
	}
	// Order flipped: same answer.
	q2 := right.Query("data->>'id'", "data->>'city'").
		Join(left, []string{"data->>'business'", "data->>'stars'::BigInt"}, 0, 0)
	if got := q2.effectiveWorkers(); got != 6 {
		t.Fatalf("flipped effectiveWorkers = %d, want 6", got)
	}
	// Single table: its own setting.
	if got := left.Query("data->>'business'").effectiveWorkers(); got != 1 {
		t.Fatalf("single-table effectiveWorkers = %d, want 1", got)
	}

	// The join still answers correctly under the resolved parallelism.
	res, err := q.GroupBy(3).Aggregate(CountAll("n")).OrderBy(0, false).Run()
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for i := 0; i < res.NumRows(); i++ {
		total += res.Value(i, 1).Int64()
	}
	if total != 100 {
		t.Fatalf("join row count = %d, want 100", total)
	}
}

// TestExplainAnalyzeMorselTokens: EXPLAIN ANALYZE surfaces the morsel
// count on scans and the partition fan-out on aggregations.
func TestExplainAnalyzeMorselTokens(t *testing.T) {
	o := opts()
	o.Workers = 4
	o.TileSize = 32
	tbl, err := Load("reviews", reviewDocs(800), o)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := tbl.Query("data->>'stars'::BigInt", "data->>'useful'::BigInt").
		GroupBy(0).
		Aggregate(CountAll("n"), Sum(1, "u")).
		OrderBy(0, false).
		RunAnalyzed()
	if err != nil {
		t.Fatal(err)
	}
	plan := stats.Plan.String()
	if !strings.Contains(plan, "morsels=") {
		t.Fatalf("EXPLAIN ANALYZE misses morsels= token:\n%s", plan)
	}
	if !strings.Contains(plan, "agg_partitions=") {
		t.Fatalf("EXPLAIN ANALYZE misses agg_partitions= token:\n%s", plan)
	}
	// 800 rows over 32-row tiles with 4 workers must produce several
	// morsels and a multi-partition merge.
	var morsels, parts int
	for _, line := range strings.Split(plan, "\n") {
		if i := strings.Index(line, "morsels="); i >= 0 {
			fmt.Sscanf(line[i:], "morsels=%d", &morsels)
		}
		if i := strings.Index(line, "agg_partitions="); i >= 0 {
			fmt.Sscanf(line[i:], "agg_partitions=%d", &parts)
		}
	}
	if morsels < 2 {
		t.Fatalf("morsels=%d, want >= 2:\n%s", morsels, plan)
	}
	if parts < 8 {
		t.Fatalf("agg_partitions=%d, want >= 8 at 4 workers:\n%s", parts, plan)
	}
}

// TestQueryConformanceAcrossWorkerCounts: the public API returns
// byte-identical rendered results for every worker count, across scan,
// filter, group-by, and join query shapes.
func TestQueryConformanceAcrossWorkerCounts(t *testing.T) {
	all := reviewDocs(600)
	queries := dirQueries()
	var want []string
	for _, w := range []int{1, 2, 3, 8} {
		o := opts()
		o.Workers = w
		o.TileSize = 48
		tbl, err := Load("reviews", all, o)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for qi, mk := range queries {
			res, err := mk(tbl).Run()
			if err != nil {
				t.Fatalf("workers=%d query %d: %v", w, qi, err)
			}
			got = append(got, res.String())
		}
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d differs at workers=%d:\nworkers=1:\n%s\nworkers=%d:\n%s",
					i, w, want[i], w, got[i])
			}
		}
	}
}

// TestConcurrentQueriesDuringCompaction races parallel queries against
// explicit compaction on a multi-segment directory table. Under -race
// this doubles as the data-race check for the morsel scheduler and the
// partitioned aggregation merge on a live, generation-swapping table.
func TestConcurrentQueriesDuringCompaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "reviews")
	o := dirOpts()
	o.Workers = 4
	tbl, err := OpenDir("reviews", dir, o)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer tbl.Close()
	all := reviewDocs(480)
	flushBatches(t, tbl, all, 8)

	want := runAll(t, tbl, "pre-compaction")

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				for qi, mk := range dirQueries() {
					res, err := mk(tbl).Run()
					if err != nil {
						errs <- fmt.Sprintf("goroutine %d query %d: %v", g, qi, err)
						return
					}
					if got := res.String(); got != want[qi] {
						errs <- fmt.Sprintf("goroutine %d query %d differs during compaction", g, qi)
						return
					}
				}
			}
		}(g)
	}
	if _, err := tbl.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if err := tbl.ScanErr(); err != nil {
		t.Fatalf("ScanErr: %v", err)
	}
	got := runAll(t, tbl, "post-compaction")
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d differs after compaction", i)
		}
	}
}
