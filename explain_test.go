package jsontiles

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// mixedDocs interleaves two document structures so tuple reordering
// clusters them into distinct tiles and "status" queries can skip the
// event-only tiles.
func mixedDocs(n int) [][]byte {
	var out [][]byte
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			out = append(out, []byte(fmt.Sprintf(
				`{"kind":"http","status":%d,"latency_ms":%d.5,"path":"/api/%d"}`,
				200+(i%3)*100, i%90, i%7)))
		} else {
			out = append(out, []byte(fmt.Sprintf(
				`{"kind":"event","name":"ev%d","payload":{"seq":%d}}`, i%5, i)))
		}
	}
	return out
}

func usersDocs(n int) [][]byte {
	var out [][]byte
	for i := 0; i < n; i++ {
		out = append(out, []byte(fmt.Sprintf(
			`{"uid":"u%02d","plan":"%s"}`, i, []string{"free", "pro"}[i%2])))
	}
	return out
}

func ordersDocs(n int) [][]byte {
	var out [][]byte
	for i := 0; i < n; i++ {
		out = append(out, []byte(fmt.Sprintf(
			`{"order":%d,"user":"u%02d","total":%d}`, i, i%20, 10+i%90)))
	}
	return out
}

func TestExplainJoinGroupBy(t *testing.T) {
	users, err := Load("users", usersDocs(20), opts())
	if err != nil {
		t.Fatal(err)
	}
	orders, err := Load("orders", ordersDocs(400), opts())
	if err != nil {
		t.Fatal(err)
	}

	q := orders.Query("data->>'user'", "data->>'total'::BigInt").
		Join(users, []string{"data->>'uid'", "data->>'plan'"}, 0, 0).
		GroupBy(3).
		Aggregate(CountAll("n"), Sum(1, "revenue"))

	plan, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Find("HashJoin") == nil {
		t.Fatalf("plan lacks HashJoin:\n%s", plan)
	}
	if plan.Find("GroupBy") == nil {
		t.Fatalf("plan lacks GroupBy:\n%s", plan)
	}
	scan := plan.Find("Scan")
	if scan == nil {
		t.Fatalf("plan lacks Scan:\n%s", plan)
	}
	if scan.EstRows < 0 {
		t.Fatalf("scan node has no cardinality estimate:\n%s", plan)
	}
	// Explain must not execute: no node carries measured stats.
	if plan.Analyzed || plan.Find("HashJoin").Analyzed {
		t.Fatalf("Explain executed the plan:\n%s", plan)
	}
	if !strings.Contains(plan.String(), "HashJoin") {
		t.Fatalf("String() misses the join:\n%s", plan)
	}
}

func TestRunAnalyzedJoinGroupBy(t *testing.T) {
	users, err := Load("users", usersDocs(20), opts())
	if err != nil {
		t.Fatal(err)
	}
	orders, err := Load("orders", ordersDocs(400), opts())
	if err != nil {
		t.Fatal(err)
	}

	build := func() *Query {
		return orders.Query("data->>'user'", "data->>'total'::BigInt").
			Join(users, []string{"data->>'uid'", "data->>'plan'"}, 0, 0).
			GroupBy(3).
			Aggregate(CountAll("n"), Sum(1, "revenue")).
			OrderBy(0, false)
	}

	plain, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := build().RunAnalyzed()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != plain.NumRows() || res.NumRows() != 2 {
		t.Fatalf("analyzed rows = %d, plain rows = %d, want 2", res.NumRows(), plain.NumRows())
	}
	if !stats.Analyzed || stats.RowsReturned != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Wall <= 0 || stats.ExecTime <= 0 {
		t.Fatalf("missing timings: wall=%v exec=%v", stats.Wall, stats.ExecTime)
	}
	if stats.PlanTime <= 0 {
		t.Fatalf("join query should report optimizer time, got %v", stats.PlanTime)
	}

	join := stats.Plan.Find("HashJoin")
	if join == nil || !join.Analyzed {
		t.Fatalf("join node missing or unanalyzed:\n%s", stats.Plan)
	}
	if join.Rows != 400 {
		t.Fatalf("join emitted %d rows, want 400", join.Rows)
	}
	// Both scans report their table and row counts.
	seen := map[string]int64{}
	var walk func(n *PlanNode)
	walk = func(n *PlanNode) {
		if n.Op == "Scan" {
			if !n.Analyzed || n.Scan == nil {
				t.Fatalf("scan node unanalyzed:\n%s", stats.Plan)
			}
			seen[n.Scan.Table] = n.Scan.RowsScanned
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(stats.Plan)
	if seen["users"] != 20 || seen["orders"] != 400 {
		t.Fatalf("per-table rows scanned = %v", seen)
	}
	out := stats.String()
	for _, want := range []string{"HashJoin", "GroupBy", "rows=400", "users", "orders"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats.String() misses %q:\n%s", want, out)
		}
	}
}

func TestTileSkippingAccounting(t *testing.T) {
	for _, skip := range []bool{true, false} {
		o := opts()
		o.SkipTiles = skip
		tbl, err := Load("logs", mixedDocs(2048), o)
		if err != nil {
			t.Fatal(err)
		}
		numTiles := int64(tbl.StorageInfo().NumTiles)
		if numTiles < 4 {
			t.Fatalf("want several tiles, got %d", numTiles)
		}

		base := obs.Default.Snapshot()
		_, stats, err := tbl.Query("data->>'status'::BigInt").
			WhereNotNull(0).
			GroupBy(0).
			Aggregate(CountAll("n")).
			RunAnalyzed()
		if err != nil {
			t.Fatal(err)
		}
		scan := stats.Plan.Find("Scan")
		if scan == nil || scan.Scan == nil {
			t.Fatalf("no scan stats:\n%s", stats.Plan)
		}
		s := scan.Scan

		// Every tile is accounted for, scanned or skipped.
		if s.TilesScanned+s.TilesSkipped != numTiles || s.NumTiles != numTiles {
			t.Fatalf("skip=%v: scanned %d + skipped %d != NumTiles %d",
				skip, s.TilesScanned, s.TilesSkipped, numTiles)
		}
		if skip && s.TilesSkipped == 0 {
			t.Fatalf("SkipTiles=true but no tile was skipped (%d tiles)", numTiles)
		}
		if !skip && s.TilesSkipped != 0 {
			t.Fatalf("SkipTiles=false yet %d tiles skipped", s.TilesSkipped)
		}
		if skip && s.SkipRatio() <= 0 {
			t.Fatalf("skip ratio = %v", s.SkipRatio())
		}

		// The process-wide registry saw the same tile accounting.
		d := obs.Default.Snapshot().Diff(base)
		if d.Get("tiles_scanned")+d.Get("tiles_skipped") != numTiles {
			t.Fatalf("registry delta %d+%d != %d",
				d.Get("tiles_scanned"), d.Get("tiles_skipped"), numTiles)
		}
		if d.Get("queries_run") != 1 {
			t.Fatalf("queries_run delta = %d", d.Get("queries_run"))
		}
	}
}

// TestExplainAnalyzeBatchCounters pins the batch-execution accounting
// in EXPLAIN ANALYZE: a filter+aggregate over tiles takes the
// vectorized path, the scan node reports batch/vectorized/fallback row
// counts that add up, and the rendered plan carries them.
func TestExplainAnalyzeBatchCounters(t *testing.T) {
	tbl, err := Load("reviews", reviewDocs(600), opts())
	if err != nil {
		t.Fatal(err)
	}

	_, stats, err := tbl.Query("data->>'stars'::BigInt").
		WhereCmp(0, Ge, 4).
		Aggregate(CountAll("n"), Sum(0, "s")).
		RunAnalyzed()
	if err != nil {
		t.Fatal(err)
	}
	scan := stats.Plan.Find("Scan")
	if scan == nil || scan.Scan == nil {
		t.Fatalf("no scan stats:\n%s", stats.Plan)
	}
	s := scan.Scan
	if s.Batches == 0 {
		t.Fatalf("tiles scan emitted no batches: %+v", s)
	}
	if s.RowsVectorized == 0 {
		t.Fatalf("uniform int column should vectorize: %+v", s)
	}
	if s.RowsVectorized+s.RowsFallback != s.RowsScanned {
		t.Fatalf("vec %d + fallback %d != scanned %d",
			s.RowsVectorized, s.RowsFallback, s.RowsScanned)
	}
	out := stats.String()
	for _, want := range []string{"batches=", "vec=", "[vectorized]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analyzed plan misses %q:\n%s", want, out)
		}
	}
}

// TestExplainAnalyzeDictCounters pins the dictionary fast-path
// accounting: a string-equality filter plus a low-cardinality GROUP BY
// over dictionary-encoded columns must report code-space kernel
// shortcuts and code-indexed aggregation batches, and the rendered
// stats must carry them.
func TestExplainAnalyzeDictCounters(t *testing.T) {
	var out [][]byte
	levels := []string{"debug", "error", "info", "warn"}
	for i := 0; i < 600; i++ {
		out = append(out, []byte(fmt.Sprintf(
			`{"level":"%s","latency":%d}`, levels[i%4], i%100)))
	}
	tbl, err := Load("logs", out, opts())
	if err != nil {
		t.Fatal(err)
	}

	base := obs.Default.Snapshot()
	res, stats, err := tbl.Query("data->>'level'", "data->>'latency'::BigInt").
		WhereCmp(0, Eq, "error").
		GroupBy(0).
		Aggregate(CountAll("n"), Sum(1, "total")).
		RunAnalyzed()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1 (only the error group)", res.NumRows())
	}
	if stats.DictKernelShortcuts == 0 {
		t.Fatalf("string filter on a dict column reported no kernel shortcuts: %+v", stats)
	}
	if stats.DictGroupByBatches == 0 {
		t.Fatalf("low-cardinality GROUP BY reported no dict batches: %+v", stats)
	}
	d := obs.Default.Snapshot().Diff(base)
	if d.Get("dict_kernel_shortcuts") == 0 || d.Get("dict_groupby_fastpath") == 0 {
		t.Fatalf("registry deltas missing dict counters: %v", d)
	}
	rendered := stats.String()
	for _, want := range []string{"dict_kernels=", "dict_groupby="} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("stats.String() misses %q:\n%s", want, rendered)
		}
	}
}

// TestTopKOrderByLimit pins the ORDER BY + LIMIT fusion: the plan's
// OrderBy node advertises top-K, and the fused result is identical to
// sorting everything and trimming.
func TestTopKOrderByLimit(t *testing.T) {
	tbl, err := Load("reviews", reviewDocs(500), opts())
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Query {
		return tbl.Query("data->>'review_id'", "data->>'useful'::BigInt").
			OrderBy(1, true).
			OrderBy(0, false)
	}
	full, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	topk, stats, err := build().Limit(7).RunAnalyzed()
	if err != nil {
		t.Fatal(err)
	}
	if topk.NumRows() != 7 {
		t.Fatalf("rows = %d, want 7", topk.NumRows())
	}
	ob := stats.Plan.Find("OrderBy")
	if ob == nil || !strings.Contains(ob.Detail, "top-7") {
		t.Fatalf("OrderBy node not fused into top-K:\n%s", stats.Plan)
	}
	for i := 0; i < 7; i++ {
		for c := 0; c < 2; c++ {
			if topk.Value(i, c).String() != full.Value(i, c).String() {
				t.Fatalf("row %d col %d differs: topk=%v full=%v",
					i, c, topk.Value(i, c), full.Value(i, c))
			}
		}
	}
}

func TestOnQueryDoneHook(t *testing.T) {
	o := opts()
	var got []QueryStats
	o.OnQueryDone = func(s QueryStats) { got = append(got, s) }
	tbl, err := Load("reviews", reviewDocs(300), o)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := tbl.Query("data->>'stars'::BigInt").WhereCmp(0, Ge, 4).Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("hook called %d times", len(got))
	}
	if got[0].Analyzed {
		t.Fatal("plain Run reported analyzed stats")
	}
	if got[0].Plan == nil || got[0].Plan.Find("Scan") == nil {
		t.Fatalf("hook stats lack a plan: %+v", got[0])
	}
	if got[0].Wall <= 0 {
		t.Fatalf("hook stats lack wall time: %+v", got[0])
	}

	if _, _, err := tbl.Query("data->>'stars'::BigInt").WhereCmp(0, Ge, 4).RunAnalyzed(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[1].Analyzed {
		t.Fatalf("RunAnalyzed hook: calls=%d stats=%+v", len(got), got[len(got)-1])
	}
}

// TestConcurrentLoadMetrics exercises shared-Metrics accumulation from
// parallel loader workers and from concurrent tables (run with -race).
func TestConcurrentLoadMetrics(t *testing.T) {
	o := opts()
	o.Workers = 4

	var wg sync.WaitGroup
	tables := make([]*Table, 6)
	errs := make([]error, len(tables))
	for i := range tables {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tables[i], errs[i] = Load(fmt.Sprintf("t%d", i), mixedDocs(1024), o)
		}(i)
	}
	wg.Wait()

	for i, tbl := range tables {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		ls := tbl.LoadStats()
		if ls.TilesBuilt != int64(tbl.StorageInfo().NumTiles) {
			t.Fatalf("table %d: TilesBuilt %d != NumTiles %d",
				i, ls.TilesBuilt, tbl.StorageInfo().NumTiles)
		}
		if ls.Parse <= 0 || ls.Extract <= 0 || ls.WriteJSONB <= 0 {
			t.Fatalf("table %d: empty load breakdown %+v", i, ls)
		}
	}
}
