package jsontiles

// End-to-end acceptance tests for segment persistence: a reopened
// segment answers queries byte-identically to the in-memory table it
// was written from, skipped tiles and unaccessed columns incur zero
// block I/O, and repeated queries hit the buffer pool.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReopen(t *testing.T, tbl *Table, o Options) *Table {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.seg")
	if err := tbl.WriteSegment(path); err != nil {
		t.Fatal(err)
	}
	seg, err := OpenSegment(tbl.Name(), path, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seg.Close() })
	return seg
}

func TestSegmentRoundTripIdenticalResults(t *testing.T) {
	o := opts()
	mem, err := Load("reviews", reviewDocs(500), o)
	if err != nil {
		t.Fatal(err)
	}
	seg := writeReopen(t, mem, o)
	if seg.NumRows() != mem.NumRows() {
		t.Fatalf("rows: segment %d, memory %d", seg.NumRows(), mem.NumRows())
	}

	queries := []func(*Table) *Query{
		func(tb *Table) *Query {
			return tb.Query("data->>'review_id'", "data->>'stars'::BigInt",
				"data->>'business'", "data->>'date'").OrderBy(0, false)
		},
		func(tb *Table) *Query {
			return tb.Query("data->>'stars'::BigInt", "data->>'useful'::BigInt").
				GroupBy(0).
				Aggregate(CountAll("n"), Sum(1, "u"), Avg(1, "avg")).
				OrderBy(0, false)
		},
		func(tb *Table) *Query {
			return tb.Query("data->>'review_id'", "data->>'stars'::BigInt").
				WhereCmp(1, Ge, 4).OrderBy(0, false)
		},
	}
	for qi, mk := range queries {
		want, err := mk(mem).Run()
		if err != nil {
			t.Fatalf("query %d (memory): %v", qi, err)
		}
		got, err := mk(seg).Run()
		if err != nil {
			t.Fatalf("query %d (segment): %v", qi, err)
		}
		if got.String() != want.String() {
			t.Errorf("query %d differs:\nmemory:\n%s\nsegment:\n%s", qi, want, got)
		}
	}
	if err := seg.ScanErr(); err != nil {
		t.Fatalf("ScanErr = %v", err)
	}
	// Statistics survived the round trip.
	if seg.Stats().Rows() != mem.Stats().Rows() {
		t.Errorf("stats rows: segment %d, memory %d", seg.Stats().Rows(), mem.Stats().Rows())
	}
	if seg.Stats().PathCount("stars") != mem.Stats().PathCount("stars") {
		t.Errorf("PathCount(stars): segment %d, memory %d",
			seg.Stats().PathCount("stars"), mem.Stats().PathCount("stars"))
	}
}

// TestSegmentLazyBlockIO pins the acceptance criteria: a query over one
// extracted column reads exactly one block per scanned tile (unaccessed
// columns and the binary-JSON fallback never leave disk), a query whose
// filter rejects every tile reads zero blocks, and re-running a query
// serves its blocks from the buffer pool.
func TestSegmentLazyBlockIO(t *testing.T) {
	o := opts()
	mem, err := Load("reviews", reviewDocs(512), o)
	if err != nil {
		t.Fatal(err)
	}
	seg := writeReopen(t, mem, o)

	scanStats := func(q *Query) *ScanStats {
		t.Helper()
		_, stats, err := q.RunAnalyzed()
		if err != nil {
			t.Fatal(err)
		}
		n := stats.Plan.Find("Scan")
		if n == nil || n.Scan == nil {
			t.Fatalf("no scan stats:\n%s", stats.Plan)
		}
		return n.Scan
	}

	numTiles := int64(512 / o.TileSize)

	// Cold single-column scan: one column block per tile, all misses,
	// no document blocks.
	s := scanStats(seg.Query("data->>'stars'::BigInt").Aggregate(Sum(0, "s")))
	if s.NumTiles != numTiles || s.TilesScanned != numTiles {
		t.Fatalf("tiles: %+v, want %d scanned", s, numTiles)
	}
	if s.BlocksRead != numTiles {
		t.Errorf("cold scan read %d blocks, want %d (one column per tile)", s.BlocksRead, numTiles)
	}
	if s.PoolMisses != numTiles || s.PoolHits != 0 {
		t.Errorf("cold scan pool %d hit/%d miss, want 0/%d", s.PoolHits, s.PoolMisses, numTiles)
	}
	if s.BlockBytes <= 0 {
		t.Errorf("cold scan BlockBytes = %d", s.BlockBytes)
	}

	// Warm repeat: same blocks, now from the pool — zero disk reads.
	s = scanStats(seg.Query("data->>'stars'::BigInt").Aggregate(Sum(0, "s")))
	if s.PoolHits != numTiles || s.PoolMisses != 0 {
		t.Errorf("warm scan pool %d hit/%d miss, want %d/0", s.PoolHits, s.PoolMisses, numTiles)
	}
	if s.BlocksRead != 0 {
		t.Errorf("warm scan read %d blocks, want 0", s.BlocksRead)
	}

	// A null-rejecting filter on an absent path skips every tile from
	// footer metadata alone: zero blocks touched.
	s = scanStats(seg.Query("data->>'no_such_key'").WhereNotNull(0))
	if s.TilesSkipped != numTiles {
		t.Fatalf("skipped %d tiles, want %d", s.TilesSkipped, numTiles)
	}
	if s.BlocksRead != 0 || s.PoolHits != 0 || s.PoolMisses != 0 {
		t.Errorf("skipped scan touched blocks: %+v", s)
	}

	// The rendered plan carries the I/O counters.
	_, stats, err := seg.Query("data->>'useful'::BigInt").Aggregate(Max(0, "m")).RunAnalyzed()
	if err != nil {
		t.Fatal(err)
	}
	out := stats.String()
	if !strings.Contains(out, "pool") || !strings.Contains(out, "blocks=") {
		t.Errorf("analyzed plan misses pool/block counters:\n%s", out)
	}
	if err := seg.ScanErr(); err != nil {
		t.Fatalf("ScanErr = %v", err)
	}
}

func TestSegmentWriteFlushesPending(t *testing.T) {
	o := opts()
	tbl := New("inc", o)
	for _, d := range reviewDocs(100) {
		if err := tbl.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	seg := writeReopen(t, tbl, o)
	if seg.NumRows() != 100 {
		t.Fatalf("rows = %d, want 100 (pending inserts must be flushed)", seg.NumRows())
	}
}

func TestSegmentCorruptBlockDegradesToScanErr(t *testing.T) {
	o := opts()
	mem, err := Load("reviews", reviewDocs(256), o)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.seg")
	if err := mem.WriteSegment(path); err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the first data block (right after the
	// 8-byte header magic). Open still succeeds — the footer is intact
	// — but whichever access needs that block gets NULLs plus a
	// recorded scan error instead of a crash.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[8] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	seg, err := OpenSegment("reviews", path, o)
	if err != nil {
		t.Fatalf("open after data-block corruption should succeed: %v", err)
	}
	defer seg.Close()

	// Touch every column and the document fallback so the corrupt
	// block is certainly accessed.
	res, err := seg.Query("data->>'review_id'", "data->>'stars'::BigInt", "data->'stars'").Run()
	if err != nil {
		t.Fatalf("query should degrade, not fail: %v", err)
	}
	if res.NumRows() != 256 {
		t.Fatalf("rows = %d, want 256", res.NumRows())
	}
	if seg.ScanErr() == nil {
		t.Fatal("ScanErr = nil, want the corrupt-block error")
	}
}

func TestOpenSegmentErrors(t *testing.T) {
	if _, err := OpenSegment("x", filepath.Join(t.TempDir(), "missing.seg"), opts()); err == nil {
		t.Error("opening a missing file should fail")
	}
	junk := filepath.Join(t.TempDir(), "junk.seg")
	if err := os.WriteFile(junk, []byte("this is not a segment file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegment("x", junk, opts()); err == nil {
		t.Error("opening junk should fail")
	}
}

// Close on an in-memory table is a harmless no-op.
func TestCloseInMemoryNoOp(t *testing.T) {
	tbl, err := Load("m", reviewDocs(10), opts())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.ScanErr(); err != nil {
		t.Fatal(err)
	}
}
