package jsontiles

// The debug HTTP surface: a process-wide server exposing the metric
// registry in Prometheus text exposition format, the live-query
// registry as JSON, recent query span trees as Chrome trace-event
// JSON, and net/http/pprof. Started explicitly with ServeDebug or
// implicitly through Options.DebugAddr.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"sync"

	"repro/internal/obs"
)

var debugSrv struct {
	mu   sync.Mutex
	addr string // actual listen address once started
	srv  *http.Server
}

// ServeDebug starts the process-wide debug HTTP server on addr
// ("host:port"; ":0" picks a free port) and returns the actual listen
// address. It serves:
//
//	/metrics        — every counter, gauge, and histogram of the
//	                  default registry, Prometheus text exposition
//	                  format
//	/debug/queries  — the in-flight queries as a JSON array (id, plan
//	                  digest, tables, elapsed, rows/tiles/bytes so far)
//	/debug/trace    — the last N finished queries' operator span trees
//	                  as Chrome trace-event JSON (load in
//	                  chrome://tracing or Perfetto); ?last=N, default 16
//	/debug/pprof/…  — the standard net/http/pprof handlers
//
// The server is process-wide and started at most once: subsequent
// calls (any addr) return the first server's address.
func ServeDebug(addr string) (string, error) {
	debugSrv.mu.Lock()
	defer debugSrv.mu.Unlock()
	if debugSrv.addr != "" {
		return debugSrv.addr, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: debugMux()}
	go srv.Serve(ln)
	debugSrv.addr = ln.Addr().String()
	debugSrv.srv = srv
	return debugSrv.addr, nil
}

// ShutdownDebug gracefully stops the process-wide debug server,
// waiting for in-flight handlers up to ctx's deadline. A no-op when
// the server was never started. After shutdown, ServeDebug can start
// a fresh server.
func ShutdownDebug(ctx context.Context) error {
	debugSrv.mu.Lock()
	srv := debugSrv.srv
	debugSrv.srv = nil
	debugSrv.addr = ""
	debugSrv.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// maybeServeDebug starts the debug server for Options.DebugAddr,
// reporting failure on stderr rather than failing table construction
// — an occupied debug port should not take the data path down.
func maybeServeDebug(addr string) {
	if addr == "" {
		return
	}
	if _, err := ServeDebug(addr); err != nil {
		fmt.Fprintf(os.Stderr, "jsontiles: debug server: %v\n", err)
	}
}

func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", handleMetrics)
	mux.HandleFunc("/debug/queries", handleQueries)
	mux.HandleFunc("/debug/trace", handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteAllMetrics(w)
}

func handleQueries(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	live := obs.Queries.Live()
	if live == nil {
		live = []obs.QueryProgress{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(live)
}

func handleTrace(w http.ResponseWriter, r *http.Request) {
	n := 16
	if s := r.URL.Query().Get("last"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "last must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteChromeTrace(w, obs.Traces.Last(n))
}
