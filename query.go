package jsontiles

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/dates"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/exprparse"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/storage"
)

// Query is a fluent query over one or more tables. Build it from
// Table.Query, refine with Where*/Join/GroupBy/Aggregate/OrderBy/Limit
// and execute with Run. All referenced columns are PostgreSQL-style
// access expressions pushed down into the tile scan.
type Query struct {
	tables []queryTable
	joins  []optimizer.JoinSpec
	err    error

	groupBy []int
	aggs    []AggregateSpec
	orderBy []orderSpec
	limit   int
}

type queryTable struct {
	table   *Table
	alias   string
	selects []storage.Access
	names   []string
	filters []expr.Expr
}

type orderSpec struct {
	col  int
	desc bool
}

// Query starts a query selecting the given access expressions, e.g.
// "data->>'user'->>'id'::BigInt". Column indexes in later calls refer
// to positions in this select list (joined tables' columns follow in
// join order).
func (t *Table) Query(selects ...string) *Query {
	q := &Query{limit: -1}
	q.addTable(t, "t0", selects)
	return q
}

func (q *Query) addTable(t *Table, alias string, selects []string) {
	qt := queryTable{table: t, alias: alias}
	for _, s := range selects {
		a, err := exprparse.Parse(s)
		if err != nil {
			q.fail(err)
			return
		}
		qt.selects = append(qt.selects, a)
		qt.names = append(qt.names, s)
	}
	q.tables = append(q.tables, qt)
}

func (q *Query) fail(err error) {
	if q.err == nil {
		q.err = err
	}
}

// globalSlot maps a global select index to (table, local slot).
func (q *Query) globalSlot(col int) (int, int, bool) {
	for ti := range q.tables {
		n := len(q.tables[ti].selects)
		if col < n {
			return ti, col, true
		}
		col -= n
	}
	return 0, 0, false
}

func localCol(selects []storage.Access, i int) expr.Expr {
	return expr.NewCol(i, selects[i].Type)
}

// Join adds another table to the query with its own select list,
// equi-joined on leftCol (a global column index of the query so far)
// = rightCol (an index into the new table's select list). Join order
// is chosen by the statistics-driven optimizer, not by call order.
func (q *Query) Join(t *Table, selects []string, leftCol, rightCol int) *Query {
	lt, ls, ok := q.globalSlot(leftCol)
	if !ok {
		q.fail(fmt.Errorf("jsontiles: join column %d out of range", leftCol))
		return q
	}
	alias := fmt.Sprintf("t%d", len(q.tables))
	q.addTable(t, alias, selects)
	if rightCol < 0 || rightCol >= len(q.tables[len(q.tables)-1].selects) {
		q.fail(fmt.Errorf("jsontiles: join column %d out of range on joined table", rightCol))
		return q
	}
	q.joins = append(q.joins, optimizer.JoinSpec{
		LeftAlias: q.tables[lt].alias, LeftSlot: ls,
		RightAlias: alias, RightSlot: rightCol,
	})
	return q
}

// where attaches a filter to the table owning the column so it is
// evaluated inside (or pushed down to) that table's scan.
func (q *Query) where(col int, build func(e expr.Expr) expr.Expr) *Query {
	ti, local, ok := q.globalSlot(col)
	if !ok {
		q.fail(fmt.Errorf("jsontiles: filter column %d out of range", col))
		return q
	}
	qt := &q.tables[ti]
	qt.filters = append(qt.filters, build(localCol(qt.selects, local)))
	return q
}

// CmpOp names a comparison for WhereCmp.
type CmpOp string

// Comparison operators.
const (
	Eq CmpOp = "="
	Ne CmpOp = "<>"
	Lt CmpOp = "<"
	Le CmpOp = "<="
	Gt CmpOp = ">"
	Ge CmpOp = ">="
)

func (op CmpOp) internal() (expr.CmpOp, error) {
	switch op {
	case Eq:
		return expr.EQ, nil
	case Ne:
		return expr.NE, nil
	case Lt:
		return expr.LT, nil
	case Le:
		return expr.LE, nil
	case Gt:
		return expr.GT, nil
	case Ge:
		return expr.GE, nil
	default:
		return 0, fmt.Errorf("jsontiles: unknown comparison %q", op)
	}
}

// WhereCmp filters rows by comparing a selected column with a constant
// (int64, float64, string, bool, or time.Time).
func (q *Query) WhereCmp(col int, op CmpOp, constant any) *Query {
	iop, err := op.internal()
	if err != nil {
		q.fail(err)
		return q
	}
	cv, err := constValue(constant)
	if err != nil {
		q.fail(err)
		return q
	}
	return q.where(col, func(e expr.Expr) expr.Expr {
		return expr.NewCmp(iop, e, expr.NewConst(cv))
	})
}

// WhereNotNull keeps rows where the column is present and non-null —
// on combined collections this is the idiomatic "document type" filter
// and enables whole-tile skipping.
func (q *Query) WhereNotNull(col int) *Query {
	return q.where(col, func(e expr.Expr) expr.Expr { return expr.NewIsNull(e, true) })
}

// WhereNull keeps rows where the column is SQL NULL.
func (q *Query) WhereNull(col int) *Query {
	return q.where(col, func(e expr.Expr) expr.Expr { return expr.NewIsNull(e, false) })
}

// WhereLike filters text columns by a LIKE pattern with leading and/or
// trailing %.
func (q *Query) WhereLike(col int, pattern string) *Query {
	return q.where(col, func(e expr.Expr) expr.Expr { return expr.NewLike(e, pattern) })
}

// WhereIn keeps rows whose column equals one of the constants.
func (q *Query) WhereIn(col int, constants ...any) *Query {
	vals := make([]expr.Value, 0, len(constants))
	for _, c := range constants {
		v, err := constValue(c)
		if err != nil {
			q.fail(err)
			return q
		}
		vals = append(vals, v)
	}
	return q.where(col, func(e expr.Expr) expr.Expr { return expr.NewIn(e, vals...) })
}

func constValue(c any) (expr.Value, error) {
	switch v := c.(type) {
	case nil:
		return expr.NullValue(), nil
	case int:
		return expr.IntValue(int64(v)), nil
	case int64:
		return expr.IntValue(v), nil
	case float64:
		return expr.FloatValue(v), nil
	case string:
		return expr.TextValue(v), nil
	case bool:
		return expr.BoolValue(v), nil
	case time.Time:
		return expr.TimestampValue(dates.FromTime(v)), nil
	default:
		return expr.Value{}, fmt.Errorf("jsontiles: unsupported constant type %T", c)
	}
}

// GroupBy groups by the given global column indexes; combine with
// Aggregate.
func (q *Query) GroupBy(cols ...int) *Query {
	q.groupBy = cols
	return q
}

// AggregateSpec describes one aggregate output column.
type AggregateSpec struct {
	fn   engine.AggFunc
	col  int // -1 for CountAll
	name string
}

// CountAll counts rows per group.
func CountAll(name string) AggregateSpec {
	return AggregateSpec{fn: engine.CountStar, col: -1, name: name}
}

// CountNotNull counts non-null values of a column per group.
func CountNotNull(col int, name string) AggregateSpec {
	return AggregateSpec{fn: engine.Count, col: col, name: name}
}

// Sum sums a numeric column per group.
func Sum(col int, name string) AggregateSpec {
	return AggregateSpec{fn: engine.Sum, col: col, name: name}
}

// Avg averages a numeric column per group.
func Avg(col int, name string) AggregateSpec {
	return AggregateSpec{fn: engine.Avg, col: col, name: name}
}

// Min takes the per-group minimum.
func Min(col int, name string) AggregateSpec {
	return AggregateSpec{fn: engine.Min, col: col, name: name}
}

// Max takes the per-group maximum.
func Max(col int, name string) AggregateSpec {
	return AggregateSpec{fn: engine.Max, col: col, name: name}
}

// Aggregate sets the aggregate outputs (requires GroupBy, possibly
// with zero columns for a global aggregate).
func (q *Query) Aggregate(aggs ...AggregateSpec) *Query {
	q.aggs = aggs
	if q.groupBy == nil {
		q.groupBy = []int{}
	}
	return q
}

// OrderBy sorts the *output* rows by column index (of the final
// projection: group-by columns first, then aggregates).
func (q *Query) OrderBy(col int, desc bool) *Query {
	q.orderBy = append(q.orderBy, orderSpec{col: col, desc: desc})
	return q
}

// Limit keeps the first n output rows.
func (q *Query) Limit(n int) *Query {
	q.limit = n
	return q
}

// Run executes the query. When Options.OnQueryDone is set, it is
// invoked with plan-shape statistics (per-operator detail requires
// RunAnalyzed).
func (q *Query) Run() (*Result, error) {
	res, _, err := q.run(context.Background(), false)
	return res, err
}

// RunContext executes the query under ctx: cancellation or deadline
// expiry stops the scans at the next morsel boundary and returns the
// context's error, and a tenant identity attached with obs.WithTenant
// attributes the query's buffer-pool and counter accounting. The
// query service runs every request through here.
func (q *Query) RunContext(ctx context.Context) (*Result, error) {
	res, _, err := q.run(ctx, false)
	return res, err
}

// planScans collects what the live-query registry needs from plan
// construction: every scan's per-scan statistics (progress is read
// from them while the query runs) and the scanned table names.
type planScans struct {
	stats  []*obs.ScanStats
	tables []string
}

// buildPlan assembles the operator tree. Scans always receive
// per-scan statistics (they feed the live-query registry and cost a
// few batched atomic adds per tile). With instrument set, every
// constructed operator is additionally wrapped in an engine.Traced
// node measuring wall time and row counts — the plain Run path
// constructs no wrappers and pays nothing beyond the scan counters.
// sp (may be nil) receives a child span for the optimizer's plan
// search.
func (q *Query) buildPlan(ctx context.Context, instrument bool, sp *obs.Span, scans *planScans) (engine.Operator, error) {
	if q.err != nil {
		return nil, q.err
	}
	if len(q.tables) == 0 {
		return nil, fmt.Errorf("jsontiles: query has no table")
	}

	wrap := func(op engine.Operator, label, detail string, est float64) engine.Operator {
		var st *obs.ScanStats
		if sc, ok := op.(*engine.Scan); ok {
			sc.Ctx = ctx
			st = &obs.ScanStats{}
			if tc, ok := sc.Rel.(storage.TileCounter); ok {
				st.NumTiles = int64(tc.NumTiles())
			}
			if nc, ok := sc.Rel.(storage.SegmentCounter); ok {
				st.SegmentsLive = int64(nc.NumSegments())
			}
			sc.Stats = st
			if scans != nil {
				scans.stats = append(scans.stats, st)
				scans.tables = append(scans.tables, sc.Rel.Name())
			}
		}
		if !instrument {
			return op
		}
		if sc, ok := op.(*engine.Scan); ok && sc.BatchCapable() {
			detail += " [vectorized]"
		}
		tr := engine.NewTraced(label, detail, est, op)
		tr.ScanStats = st
		return tr
	}

	// Assemble per-table specs.
	specs := make([]optimizer.TableSpec, len(q.tables))
	for i, qt := range q.tables {
		if qt.table.rel == nil {
			return nil, fmt.Errorf("jsontiles: table %s is empty", qt.table.name)
		}
		var filter expr.Expr
		for _, f := range qt.filters {
			if filter == nil {
				filter = f
			} else {
				filter = expr.NewAnd(filter, f)
			}
		}
		specs[i] = optimizer.TableSpec{
			Alias: qt.alias, Rel: qt.table.rel,
			Accesses: qt.selects, Names: qt.names, Filter: filter,
		}
	}

	var root engine.Operator
	var slotOf func(global int) int
	if len(specs) == 1 {
		scan := engine.NewScan(specs[0].Rel, specs[0].Accesses, specs[0].Names, specs[0].Filter)
		detail := fmt.Sprintf("%s %s", specs[0].Alias, specs[0].Rel.Name())
		if specs[0].Filter != nil {
			detail += " (filtered)"
		}
		root = wrap(scan, "Scan", detail, float64(specs[0].Rel.NumRows()))
		slotOf = func(global int) int { return global }
	} else {
		oq := optimizer.Query{Tables: specs, Joins: q.joins, Instrument: wrap}
		psp := sp.Child("plan")
		op, m, err := optimizer.Plan(oq)
		psp.End()
		if err != nil {
			return nil, err
		}
		root = op
		slotOf = func(global int) int {
			ti, local, _ := q.globalSlot(global)
			return m.Slot(q.tables[ti].alias, local)
		}
	}

	// Projection to the global select order (the join changes layout).
	width := 0
	for _, qt := range q.tables {
		width += len(qt.selects)
	}
	projExprs := make([]expr.Expr, width)
	projNames := make([]string, width)
	g := 0
	for _, qt := range q.tables {
		for local := range qt.selects {
			projExprs[g] = expr.NewCol(slotOf(g), qt.selects[local].Type)
			projNames[g] = qt.names[local]
			g++
		}
	}
	root = wrap(engine.NewProject(root, projExprs, projNames),
		"Project", fmt.Sprintf("%d cols", width), -1)

	// Aggregation.
	if q.aggs != nil {
		groups := make([]expr.Expr, len(q.groupBy))
		names := make([]string, len(q.groupBy))
		for i, col := range q.groupBy {
			groups[i] = q.colRefAfterProject(col, projExprs)
			names[i] = projNames[col]
		}
		aggSpecs := make([]engine.AggSpec, len(q.aggs))
		for i, a := range q.aggs {
			spec := engine.AggSpec{Func: a.fn, Name: a.name}
			if a.col >= 0 {
				spec.Arg = q.colRefAfterProject(a.col, projExprs)
			}
			aggSpecs[i] = spec
		}
		root = wrap(engine.NewGroupBy(root, groups, names, aggSpecs),
			"GroupBy", fmt.Sprintf("%d groups, %d aggs", len(groups), len(aggSpecs)), -1)
	}

	// Ordering and limit over the final schema. ORDER BY + LIMIT fuses
	// into a bounded top-K heap: the sort never materializes more than
	// K rows (the Limit node above it then trims nothing).
	if len(q.orderBy) > 0 {
		cols := root.Columns()
		keys := make([]engine.OrderKey, len(q.orderBy))
		for i, o := range q.orderBy {
			if o.col < 0 || o.col >= len(cols) {
				return nil, fmt.Errorf("jsontiles: order-by column %d out of range", o.col)
			}
			keys[i] = engine.OrderKey{E: expr.NewCol(o.col, cols[o.col].Type), Desc: o.desc}
		}
		ob := engine.NewOrderBy(root, keys...)
		detail := fmt.Sprintf("%d keys", len(keys))
		if q.limit > 0 {
			ob.Limit = q.limit
			detail = fmt.Sprintf("%d keys, top-%d", len(keys), q.limit)
		}
		root = wrap(ob, "OrderBy", detail, -1)
	}
	if q.limit >= 0 {
		root = wrap(engine.NewLimit(root, q.limit),
			"Limit", fmt.Sprintf("%d", q.limit), -1)
	}
	// The error can surface while building expressions above.
	if q.err != nil {
		return nil, q.err
	}
	return root, nil
}

// resolveHooks resolves the per-query observation options across the
// query's tables. The rule: the first table — in the order tables
// were added to the query (the root table, then joined tables in call
// order) — that sets OnQueryDone provides the hook, and likewise the
// first table that sets SlowQueryThreshold provides the slow-query
// configuration. A multi-table query therefore fires a hook set on
// any of its tables, not just the first.
func (q *Query) resolveHooks() (hook func(QueryStats), slowThr time.Duration, slowLog io.Writer) {
	for _, qt := range q.tables {
		if qt.table == nil {
			continue
		}
		if hook == nil && qt.table.opts.OnQueryDone != nil {
			hook = qt.table.opts.OnQueryDone
		}
		if slowThr == 0 && qt.table.opts.SlowQueryThreshold > 0 {
			slowThr = qt.table.opts.SlowQueryThreshold
			slowLog = qt.table.opts.SlowQueryLog
		}
	}
	if slowThr > 0 && slowLog == nil {
		slowLog = os.Stderr
	}
	return hook, slowThr, slowLog
}

// effectiveWorkers resolves the query's parallelism across every
// referenced table: the maximum of the per-table Workers settings
// (each already resolved, so a table with Workers 0 contributes
// GOMAXPROCS). The maximum — rather than the first table's value —
// means a join partner that asked for more parallelism is never
// silently throttled by the table that happened to be added first;
// the morsel scheduler keeps extra workers harmless on small inputs.
func (q *Query) effectiveWorkers() int {
	workers := 1
	for _, qt := range q.tables {
		if qt.table == nil {
			continue
		}
		if w := qt.table.opts.workers(); w > workers {
			workers = w
		}
	}
	return workers
}

// run executes the query, optionally with per-operator analysis.
// Every execution — analyzed or not — registers in the live-query
// registry, folds its wall/plan/exec times into the latency
// histograms, and leaves its span tree in the trace ring.
func (q *Query) run(ctx context.Context, analyze bool) (*Result, *QueryStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tenant := obs.TenantFrom(ctx)
	hook, slowThr, slowLog := q.resolveHooks()
	// Slow-query logging needs per-operator wall times for its top-
	// operator breakdown, so a configured threshold instruments the
	// plan exactly like RunAnalyzed does.
	instrument := analyze || slowThr > 0
	sp := obs.StartSpan("query")
	scans := &planScans{}
	root, err := q.buildPlan(ctx, instrument, sp, scans)
	if err != nil {
		return nil, nil, err
	}
	digest := planDigest(root)
	qh := obs.Queries.Begin(digest, scans.tables, scans.stats)
	defer qh.Finish()
	workers := q.effectiveWorkers()

	var base obs.Snapshot
	needStats := instrument || hook != nil
	if needStats {
		base = obs.Default.Snapshot()
	}
	esp := sp.Child("execute")
	res := materialize(root, workers)
	esp.End()
	if cerr := ctx.Err(); cerr != nil {
		// The scans stopped at a morsel boundary; the partial result is
		// discarded rather than returned as a silent subset.
		sp.End()
		obs.QueriesCancelled.Inc()
		if tenant != "" {
			tc := obs.Tenants.Get(tenant)
			tc.Queries.Inc()
			tc.Cancelled.Inc()
		}
		return nil, nil, fmt.Errorf("jsontiles: query cancelled: %w", cerr)
	}
	if q.aggs == nil && len(q.orderBy) == 0 {
		res.SortRows() // deterministic output for plain scans
	}
	sp.End()
	qh.Finish()
	obs.QueriesRun.Inc()
	obs.RowsEmitted.Add(int64(len(res.Rows)))
	if tenant != "" {
		tc := obs.Tenants.Get(tenant)
		tc.Queries.Inc()
		tc.RowsReturned.Add(int64(len(res.Rows)))
	}
	obs.QueryWallSeconds.ObserveDuration(sp.Duration())
	obs.QueryExecSeconds.ObserveDuration(esp.Duration())
	obs.QueryRowsReturned.Observe(float64(len(res.Rows)))
	obs.Traces.Add(obs.QueryTrace{ID: qh.ID, Digest: digest, Root: sp})

	var stats *QueryStats
	if needStats {
		// Process-wide counter deltas across the execution window. With
		// concurrent queries the deltas include their work too — they
		// are attribution hints, not exact per-query accounting.
		delta := obs.Default.Snapshot().Diff(base)
		stats = &QueryStats{
			Tenant:              tenant,
			Plan:                planNode(root, instrument),
			Wall:                sp.Duration(),
			ExecTime:            esp.Duration(),
			RowsReturned:        int64(len(res.Rows)),
			Analyzed:            instrument,
			QueryID:             qh.ID,
			PlanDigest:          digest,
			DictKernelShortcuts: delta.Get("dict_kernel_shortcuts"),
			DictGroupByBatches:  delta.Get("dict_groupby_fastpath"),
		}
		for _, c := range sp.Children() {
			if c.Name() == "plan" {
				stats.PlanTime = c.Duration()
			}
		}
		if slowThr > 0 && stats.Wall >= slowThr {
			writeSlowQueryLog(slowLog, stats)
		}
		if hook != nil {
			hook(*stats)
		}
	}
	for _, c := range sp.Children() {
		if c.Name() == "plan" {
			obs.QueryPlanSeconds.ObserveDuration(c.Duration())
		}
	}
	return newResult(res), stats, nil
}

func (q *Query) colRefAfterProject(col int, projExprs []expr.Expr) expr.Expr {
	if col < 0 || col >= len(projExprs) {
		q.fail(fmt.Errorf("jsontiles: column %d out of range", col))
		return expr.NewConst(expr.NullValue())
	}
	// After the projection, global index == slot index.
	return expr.NewCol(col, projExprs[col].Type())
}
